//! Persistent worker pool for multi-sink flow evaluation.
//!
//! [`min_max_flow_parallel`](crate::min_max_flow_parallel) used to spawn scoped threads
//! on every call; at fleet scale — thousands of evaluations per sweep, each fanning out
//! and joining — the per-call spawn cost is pure overhead. [`FlowPool`] keeps a set of
//! long-lived workers alive instead, each owning a reusable [`FlowSolver`] workspace
//! that stays warm across evaluations:
//!
//! * work is fed through a channel (a `Mutex<VecDeque>` + `Condvar` queue — no external
//!   dependency, no unsafe code);
//! * workers are spawned lazily: a pool starts with zero threads and grows on demand up
//!   to its configured cap, so sequential callers never pay for a pool;
//! * every evaluation shares its running minimum through an atomic, exactly like the
//!   scoped-thread fan-out it replaces ([`crate::csr::min_max_flow_scoped`], kept as the
//!   A/B benchmark baseline), and the *submitting* thread always works a share of the
//!   sinks itself, so an evaluation makes progress even when every pool worker is busy
//!   with other submitters (no deadlock, no idle submitter);
//! * dropping the pool shuts the workers down cleanly: the queue is drained, the
//!   shutdown flag raised, and every worker joined.
//!
//! # Fairness contract under many submitters
//!
//! The pool is shared by every shard of a `bmp-serve` fleet, so the contract matters
//! at N-submitter scale: **a submitter blocked on a slow evaluation can never starve
//! another submitter's tickets.** Three mechanisms combine to guarantee it:
//!
//! 1. the submitting thread always drains its own evaluation's sink order itself, so
//!    an evaluation completes even if no worker ever picks up one of its tickets;
//! 2. tickets from different evaluations interleave in one FIFO queue — a worker that
//!    finishes a slow ticket pulls whatever evaluation is at the head next, and a
//!    single evaluation can queue at most `threads - 1` tickets, bounding how much of
//!    the queue any one submitter occupies;
//! 3. a submitter that finishes its own drain *reclaims* its still-queued tickets
//!    (counted by [`FlowPool::tickets_reclaimed`]) instead of waiting for busy workers
//!    to reach them, so a fast evaluation never inherits a slow neighbour's wall time.
//!
//! The arena travels to the workers as an [`Arc<FlowArena>`] — the safe way to hand a
//! borrowed-for-the-call network to threads that outlive the call. Workers drop their
//! clones *before* the submitter is released, so a caller that holds the only other
//! reference (the evaluation context of `bmp-core`, say) regains unique ownership the
//! moment the call returns and can keep patching its retained arena in place.
//!
//! Exactness is inherited from the capped batched evaluator: every sink's solve is
//! capped at a running minimum that is never below the true minimum, a capped-out solve
//! cannot lower the minimum, and the sink realising the minimum is computed exactly —
//! so the pooled result is bit-for-bit the sequential [`FlowSolver::min_max_flow`].
//!
//! # Probe batches and speculation
//!
//! Besides multi-sink flow evaluations the pool runs *probe batches*
//! ([`FlowPool::probe_batch`]): a set of independent boolean feasibility probes —
//! the candidate midpoints of a speculative dichotomic search, or one round of
//! interleaved probes from many independent searches — drained with the same
//! submitter-first contract. Each batch ticket is tagged with a [`TicketClass`]:
//!
//! * [`TicketClass::FairShare`] tickets are ordinary work; reclaimed ones count
//!   into [`FlowPool::tickets_reclaimed`] exactly like flow tickets.
//! * [`TicketClass::Speculative`] tickets are wagers: the searcher that queued them
//!   may consume only some of their results. Reclaimed speculative tickets count
//!   into [`FlowPool::speculation_cancelled`] — *not* `tickets_reclaimed` — so
//!   fleet metrics distinguish cancelled speculation from reclaimed fair-share
//!   work. Speculative submissions also reserve headroom: they queue at most
//!   `max_workers - 1` helper tickets, leaving one pool lane that queued
//!   speculation can never occupy, so a co-resident session's fair-share probe is
//!   never starved by a neighbour's wagers (on top of the FIFO-interleave and
//!   submitter-self-drain guarantees above).

use crate::csr::{FlowArena, FlowSolver};
use crate::incremental::{WarmFlowCache, WarmStats};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Worker cap of the process-wide pool ([`FlowPool::global`]), aligned with the cap of
/// [`crate::suggested_flow_threads`] so evaluation fan-out stays polite inside
/// already-parallel sweeps.
const GLOBAL_POOL_CAP: usize = 8;

/// A pooled feasibility probe: a pure predicate over a caller-defined tag (a cell
/// index for batched searches, unused for single-search speculation) and a candidate
/// value. `Arc`-wrapped so one closure is shared across every ticket of a batch and
/// across rounds of a search without re-boxing.
pub type ProbeFn = Arc<dyn Fn(u64, f64) -> bool + Send + Sync>;

/// Classification of queued pool tickets, for reclaim accounting and lane
/// reservation (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketClass {
    /// Ordinary work whose every result the submitter will consume.
    FairShare,
    /// A speculative wager (e.g. follow-up midpoints of a dichotomic search): some
    /// results may be discarded, and reclaimed tickets are cancelled speculation,
    /// not starvation evidence.
    Speculative,
}

/// Shared state of one probe batch dispatched onto the pool: workers and the
/// submitter claim candidate indices from `next` and write verdicts into `results`.
struct ProbeShared {
    probe: ProbeFn,
    candidates: Vec<(u64, f64)>,
    results: Vec<AtomicBool>,
    /// Next unclaimed index into `candidates`.
    next: AtomicUsize,
    /// Tickets not yet finished; the submitter waits for zero.
    pending: Mutex<usize>,
    done: Condvar,
    /// Raised when a worker panicked mid-ticket; the submitter discards the batch
    /// and recomputes every probe sequentially.
    poisoned: AtomicBool,
}

impl ProbeShared {
    /// Claims candidates until the batch is exhausted.
    fn drain(&self) {
        loop {
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            if index >= self.candidates.len() {
                return;
            }
            let (tag, value) = self.candidates[index];
            let verdict = (self.probe)(tag, value);
            self.results[index].store(verdict, Ordering::Release);
        }
    }

    /// Marks one ticket finished, waking the submitter when it was the last.
    fn finish_ticket(&self) {
        let mut pending = self.pending.lock().expect("pool probe state poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

impl std::fmt::Debug for ProbeShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeShared")
            .field("candidates", &self.candidates.len())
            .finish_non_exhaustive()
    }
}

/// Shared state of one multi-sink evaluation dispatched onto the pool.
#[derive(Debug)]
struct EvalShared {
    /// Sinks in ascending in-capacity order — the evaluation order shared with the
    /// sequential and scoped evaluators.
    order: Vec<u32>,
    source: u32,
    /// Next unclaimed index into `order`; workers and the submitter pull from it, which
    /// load-balances better than the strided split of the scoped fan-out.
    next: AtomicUsize,
    /// Bit pattern of the running minimum (non-negative IEEE-754 doubles, flows and
    /// +inf, order identically to their bit patterns, so `fetch_min` works on the bits).
    min_bits: AtomicU64,
    /// Tickets not yet finished; the submitter waits for zero.
    pending: Mutex<usize>,
    done: Condvar,
    /// Raised when a worker panicked mid-ticket; the submitter discards the pooled
    /// result and recomputes the evaluation sequentially on its own thread.
    poisoned: AtomicBool,
    /// Route per-sink solves through warm residual reuse (see [`crate::incremental`]).
    /// The running-minimum cap makes the returned value safe either way: warm
    /// certificates only resolve at-or-above the cap, which `fetch_min` discards, so
    /// the pooled result stays bit-for-bit the sequential cold evaluation.
    incremental: bool,
    /// Warm-reuse counters contributed by worker lanes (the submitter keeps its own
    /// cache and accumulates directly); folded into the caller's cache after the wait.
    warm_started: AtomicU64,
    augment_saved: AtomicU64,
    excess_drained: AtomicU64,
}

impl EvalShared {
    /// Claims sinks until the order is exhausted or the running minimum hits zero.
    ///
    /// `warm` is each lane's private warm-state cache; it is consulted only when the
    /// evaluation was submitted in incremental mode.
    fn drain(
        &self,
        solver: &mut FlowSolver,
        arena: &FlowArena,
        mut warm: Option<&mut WarmFlowCache>,
    ) {
        loop {
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            if index >= self.order.len() {
                return;
            }
            let cap = f64::from_bits(self.min_bits.load(Ordering::Acquire));
            if cap <= 0.0 {
                return;
            }
            let sink = self.order[index] as usize;
            let flow = match warm.as_deref_mut() {
                Some(cache) if self.incremental => {
                    solver.max_flow_limited_warm(arena, self.source as usize, sink, cap, cache)
                }
                _ => solver.max_flow_limited(arena, self.source as usize, sink, cap),
            };
            self.min_bits.fetch_min(flow.to_bits(), Ordering::AcqRel);
        }
    }

    /// Folds a worker lane's warm-reuse counters into the shared totals.
    fn add_warm_stats(&self, stats: &WarmStats) {
        if *stats == WarmStats::default() {
            return;
        }
        self.warm_started
            .fetch_add(stats.flows_warm_started, Ordering::Relaxed);
        self.augment_saved
            .fetch_add(stats.augment_saved, Ordering::Relaxed);
        self.excess_drained
            .fetch_add(stats.excess_drained, Ordering::Relaxed);
    }

    /// Snapshot of the worker-contributed warm-reuse counters.
    fn warm_stats(&self) -> WarmStats {
        WarmStats {
            flows_warm_started: self.warm_started.load(Ordering::Relaxed),
            augment_saved: self.augment_saved.load(Ordering::Relaxed),
            excess_drained: self.excess_drained.load(Ordering::Relaxed),
        }
    }

    /// Marks one ticket finished, waking the submitter when it was the last.
    fn finish_ticket(&self) {
        let mut pending = self.pending.lock().expect("pool evaluation state poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

/// One unit of pool work: a share of one evaluation's sinks, or a share of one
/// probe batch's candidates.
enum TicketWork {
    Flow {
        arena: Arc<FlowArena>,
        shared: Arc<EvalShared>,
    },
    Probe {
        shared: Arc<ProbeShared>,
    },
}

struct Ticket {
    class: TicketClass,
    work: TicketWork,
}

/// The channel feeding tickets to the workers.
struct Queue {
    state: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    tickets: VecDeque<Ticket>,
    shutdown: bool,
}

/// Outstanding injected worker panics (the `FaultPlan` hook of `bmp-sim`): each armed
/// panic makes one worker ticket panic at the start of its drain. Zero in production —
/// the only cost of the disabled hook is one relaxed load per ticket.
static INJECTED_WORKER_PANICS: AtomicU64 = AtomicU64::new(0);

/// Arms `count` injected worker panics: the next `count` pool tickets picked up by
/// worker threads panic instead of draining their share. The submitting thread is never
/// the victim, so every poisoned evaluation still completes (sequentially) — this is
/// the fault-injection entry point the crash-resilience tests use to prove panic
/// containment and worker survival.
pub fn arm_worker_panics(count: u64) {
    INJECTED_WORKER_PANICS.fetch_add(count, Ordering::SeqCst);
}

/// Clears any outstanding injected worker panics, returning how many were pending.
/// Fault-plan teardown calls this so one test's leftover tokens cannot leak into the
/// next run's evaluations.
pub fn disarm_worker_panics() -> u64 {
    INJECTED_WORKER_PANICS.swap(0, Ordering::SeqCst)
}

/// RAII wrapper around the worker-panic tokens: arms `count` tokens on construction
/// and disarms whatever is left on drop. Fleet-level fault injection holds one of
/// these for the duration of a run so that *any* exit path — normal completion, an
/// early return, or an unwinding panic — clears leftover tokens instead of leaking
/// them into the next run's evaluations.
#[derive(Debug)]
pub struct WorkerPanicGuard {
    _private: (),
}

impl WorkerPanicGuard {
    /// Arms `count` injected worker panics (see [`arm_worker_panics`]) and returns a
    /// guard that disarms any unconsumed tokens when dropped.
    #[must_use]
    pub fn arm(count: u64) -> Self {
        arm_worker_panics(count);
        WorkerPanicGuard { _private: () }
    }
}

impl Drop for WorkerPanicGuard {
    fn drop(&mut self) {
        disarm_worker_panics();
    }
}

/// Consumes one armed panic token, if any are outstanding.
fn take_injected_panic() -> bool {
    if INJECTED_WORKER_PANICS.load(Ordering::Relaxed) == 0 {
        return false;
    }
    INJECTED_WORKER_PANICS
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

/// Worker main loop: pull tickets until the queue is drained *and* shut down. The
/// solver workspace lives for the whole thread, so its buffers stay warm across
/// evaluations — the entire point of keeping the workers persistent.
fn worker_main(queue: Arc<Queue>) {
    let mut solver = FlowSolver::new();
    // Per-worker warm residual cache: like the solver workspace it stays warm across
    // evaluations, which is what lets incremental mode pay off on pooled probes.
    let mut warm = WarmFlowCache::new();
    loop {
        let ticket = {
            let mut state = queue.state.lock().expect("pool queue poisoned");
            loop {
                if let Some(ticket) = state.tickets.pop_front() {
                    break ticket;
                }
                if state.shutdown {
                    return;
                }
                state = queue.available.wait(state).expect("pool queue poisoned");
            }
        };
        // A panicking probe or solve must not wedge the submitter (it waits for the
        // pending count) or kill the worker; contain it, flag the work as poisoned,
        // and let the submitter recompute sequentially. The worker itself stays in
        // its loop — a panic never shrinks the pool's parallelism.
        match ticket.work {
            TicketWork::Flow { arena, shared } => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if take_injected_panic() {
                        panic!("injected flow worker panic");
                    }
                    shared.drain(&mut solver, &arena, Some(&mut warm))
                }));
                // Release the network before the submitter can wake: once `pending`
                // hits zero, no worker holds an arena reference any more.
                drop(arena);
                shared.add_warm_stats(&warm.stats.take());
                if outcome.is_err() {
                    shared.poisoned.store(true, Ordering::Release);
                    // The unwound solve may have left the workspace mid-mutation; a
                    // fresh solver (and warm cache — its residual states are equally
                    // suspect) restores the buffers' invariants for the next ticket.
                    solver = FlowSolver::new();
                    warm = WarmFlowCache::new();
                }
                shared.finish_ticket();
            }
            TicketWork::Probe { shared } => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if take_injected_panic() {
                        panic!("injected flow worker panic");
                    }
                    shared.drain()
                }));
                if outcome.is_err() {
                    shared.poisoned.store(true, Ordering::Release);
                }
                shared.finish_ticket();
            }
        }
    }
}

/// A persistent pool of flow workers (see the module docs).
///
/// Cheap to construct: no thread is spawned until the first parallel evaluation needs
/// one, and never more than the configured cap. The pool is `Sync` — any number of
/// threads may submit evaluations concurrently; tickets from different evaluations
/// interleave on the same workers.
#[derive(Debug)]
pub struct FlowPool {
    queue: Arc<Queue>,
    max_workers: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Evaluations that hit a worker panic and were recomputed sequentially.
    panics_contained: AtomicU64,
    /// Helper tickets reclaimed unpicked by their own submitter after it drained the
    /// whole sink order itself (the anti-starvation escape hatch of the fairness
    /// contract — see the module docs). Fair-share work only; cancelled speculation
    /// has its own counter.
    tickets_reclaimed: AtomicU64,
    /// Speculative helper tickets reclaimed unpicked by their own submitter — a
    /// wager that was never even evaluated, not starvation evidence (see the
    /// module docs on probe batches).
    speculation_cancelled: AtomicU64,
}

impl std::fmt::Debug for Queue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Queue").finish_non_exhaustive()
    }
}

impl FlowPool {
    /// Creates a pool that will spawn at most `max_workers` helper threads (lazily).
    ///
    /// `max_workers == 0` is a valid degenerate pool: every evaluation runs sequentially
    /// on the submitting thread.
    #[must_use]
    pub fn new(max_workers: usize) -> Self {
        FlowPool {
            queue: Arc::new(Queue {
                state: Mutex::new(QueueState {
                    tickets: VecDeque::new(),
                    shutdown: false,
                }),
                available: Condvar::new(),
            }),
            max_workers,
            workers: Mutex::new(Vec::new()),
            panics_contained: AtomicU64::new(0),
            tickets_reclaimed: AtomicU64::new(0),
            speculation_cancelled: AtomicU64::new(0),
        }
    }

    /// The process-wide shared pool (capped at 8 workers, matching
    /// [`crate::suggested_flow_threads`]). This is the pool behind
    /// [`crate::min_max_flow_parallel`] and the parallel evaluation mode of `bmp-core`'s
    /// `EvalCtx`; sharing one pool keeps the machine-wide flow-thread count bounded no
    /// matter how many contexts or sweep workers request parallel evaluation.
    #[must_use]
    pub fn global() -> &'static FlowPool {
        static GLOBAL: OnceLock<FlowPool> = OnceLock::new();
        GLOBAL.get_or_init(|| FlowPool::new(GLOBAL_POOL_CAP))
    }

    /// Maximum number of helper threads this pool may spawn.
    #[must_use]
    pub fn max_workers(&self) -> usize {
        self.max_workers
    }

    /// Number of worker threads spawned so far (they are never retired before drop, so
    /// this is monotone and bounded by [`FlowPool::max_workers`] — the spawn-counting
    /// tests assert that repeated evaluations do not grow it).
    #[must_use]
    pub fn spawned_workers(&self) -> usize {
        self.workers
            .lock()
            .expect("pool worker list poisoned")
            .len()
    }

    /// Number of worker threads spawned so far that are still running. Workers contain
    /// panics with `catch_unwind` and never exit before pool shutdown, so this equals
    /// [`FlowPool::spawned_workers`] even after poisoned evaluations — the assertion
    /// behind the panic-containment tests.
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.workers
            .lock()
            .expect("pool worker list poisoned")
            .iter()
            .filter(|handle| !handle.is_finished())
            .count()
    }

    /// Number of evaluations that hit a worker panic, were discarded, and were
    /// recomputed sequentially on the submitting thread.
    #[must_use]
    pub fn panics_contained(&self) -> u64 {
        self.panics_contained.load(Ordering::Relaxed)
    }

    /// Number of helper tickets reclaimed by their own submitter because it finished
    /// the evaluation's whole sink order before any worker picked them up — the
    /// fairness contract's anti-starvation counter (see the module docs). A growing
    /// value under concurrent load is healthy: fast submitters are declining to wait
    /// behind slow neighbours.
    #[must_use]
    pub fn tickets_reclaimed(&self) -> u64 {
        self.tickets_reclaimed.load(Ordering::Relaxed)
    }

    /// Number of [`TicketClass::Speculative`] helper tickets reclaimed by their own
    /// submitter before any worker picked them up: speculation that was cancelled
    /// outright rather than evaluated and wasted. Kept separate from
    /// [`FlowPool::tickets_reclaimed`] so fleet metrics do not read cancelled
    /// wagers as fair-share starvation pressure.
    #[must_use]
    pub fn speculation_cancelled(&self) -> u64 {
        self.speculation_cancelled.load(Ordering::Relaxed)
    }

    /// Lazily grows the worker set to `wanted` threads (capped at the pool maximum).
    fn ensure_workers(&self, wanted: usize) {
        let target = wanted.min(self.max_workers);
        let mut workers = self.workers.lock().expect("pool worker list poisoned");
        while workers.len() < target {
            let queue = Arc::clone(&self.queue);
            let handle = std::thread::Builder::new()
                .name(format!("bmp-flow-{}", workers.len()))
                .spawn(move || worker_main(queue))
                .expect("cannot spawn flow pool worker");
            workers.push(handle);
        }
    }

    /// Minimum over `sinks` of the maximum flow from `source`, fanned out over the pool
    /// with up to `threads` concurrent lanes (the submitting thread is one of them —
    /// at most `threads - 1` helper tickets are queued).
    ///
    /// The submitter's share of the work runs on `solver`, so a caller holding a warm
    /// workspace (an evaluation context) reuses it. The result is bit-for-bit equal to
    /// the sequential [`FlowSolver::min_max_flow`]; `threads <= 1` (or a pool with no
    /// workers) simply runs it. Returns `f64::INFINITY` for an empty `sinks`.
    ///
    /// A worker panic mid-evaluation is contained, not propagated: the poisoned pooled
    /// result is discarded and the evaluation recomputed sequentially on the submitting
    /// thread (counted by [`FlowPool::panics_contained`]), so the returned value is
    /// correct — and the workers survive for the next evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `source` or a sink is out of range.
    pub fn min_max_flow_with(
        &self,
        solver: &mut FlowSolver,
        arena: &Arc<FlowArena>,
        source: usize,
        sinks: &[usize],
        threads: usize,
    ) -> f64 {
        self.min_max_flow_pooled(solver, arena, source, sinks, threads, None)
    }

    /// [`FlowPool::min_max_flow_with`] with warm residual reuse: the submitter's share
    /// solves through `cache`, worker lanes use their own per-thread caches, and the
    /// worker lanes' reuse counters are folded into `cache.stats` before returning.
    /// The result is bit-for-bit the sequential cold evaluation (see
    /// [`crate::incremental`] for why warm mode cannot perturb the running minimum).
    pub fn min_max_flow_warm_with(
        &self,
        solver: &mut FlowSolver,
        arena: &Arc<FlowArena>,
        source: usize,
        sinks: &[usize],
        threads: usize,
        cache: &mut WarmFlowCache,
    ) -> f64 {
        self.min_max_flow_pooled(solver, arena, source, sinks, threads, Some(cache))
    }

    fn min_max_flow_pooled(
        &self,
        solver: &mut FlowSolver,
        arena: &Arc<FlowArena>,
        source: usize,
        sinks: &[usize],
        threads: usize,
        mut warm: Option<&mut WarmFlowCache>,
    ) -> f64 {
        let lanes = threads.min(sinks.len());
        let helpers = lanes.saturating_sub(1).min(self.max_workers);
        if helpers == 0 {
            return match warm {
                Some(cache) => solver.min_max_flow_warm(arena, source, sinks, cache),
                None => solver.min_max_flow(arena, source, sinks),
            };
        }
        assert!(source < arena.num_nodes(), "source out of range");
        let mut order = Vec::with_capacity(sinks.len());
        arena.order_sinks_into(sinks, &mut order);
        self.ensure_workers(helpers);
        let shared = Arc::new(EvalShared {
            order,
            source: source as u32,
            next: AtomicUsize::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            pending: Mutex::new(helpers),
            done: Condvar::new(),
            poisoned: AtomicBool::new(false),
            incremental: warm.is_some(),
            warm_started: AtomicU64::new(0),
            augment_saved: AtomicU64::new(0),
            excess_drained: AtomicU64::new(0),
        });
        {
            let mut state = self.queue.state.lock().expect("pool queue poisoned");
            for _ in 0..helpers {
                state.tickets.push_back(Ticket {
                    class: TicketClass::FairShare,
                    work: TicketWork::Flow {
                        arena: Arc::clone(arena),
                        shared: Arc::clone(&shared),
                    },
                });
            }
        }
        self.queue.available.notify_all();
        // The submitter works its own share: progress never depends on a free worker.
        shared.drain(solver, arena, warm.as_deref_mut());
        // Reclaim helper tickets no worker has picked up yet: the submitter already
        // drained the order, so their work is done, and leaving them queued would park
        // this evaluation behind whatever unrelated evaluations busy workers are still
        // draining — a fast submitter must not inherit a slow neighbour's wall time.
        {
            let mut state = self.queue.state.lock().expect("pool queue poisoned");
            let before = state.tickets.len();
            state.tickets.retain(|ticket| {
                !matches!(&ticket.work, TicketWork::Flow { shared: s, .. } if Arc::ptr_eq(s, &shared))
            });
            let reclaimed = before - state.tickets.len();
            drop(state);
            if reclaimed > 0 {
                self.tickets_reclaimed
                    .fetch_add(reclaimed as u64, Ordering::Relaxed);
                let mut pending = shared
                    .pending
                    .lock()
                    .expect("pool evaluation state poisoned");
                *pending -= reclaimed;
                // No notify needed: this thread is the only waiter on `done`.
            }
        }
        let mut pending = shared
            .pending
            .lock()
            .expect("pool evaluation state poisoned");
        while *pending > 0 {
            pending = shared
                .done
                .wait(pending)
                .expect("pool evaluation state poisoned");
        }
        drop(pending);
        if let Some(cache) = warm.as_deref_mut() {
            cache.stats.merge(&shared.warm_stats());
        }
        if shared.poisoned.load(Ordering::Acquire) {
            // A worker panicked mid-drain: its claimed sink may have been abandoned
            // without lowering the running minimum, so the pooled value cannot be
            // trusted. Recompute sequentially — same result contract, one thread.
            self.panics_contained.fetch_add(1, Ordering::Relaxed);
            return match warm {
                Some(cache) => solver.min_max_flow_warm(arena, source, sinks, cache),
                None => solver.min_max_flow(arena, source, sinks),
            };
        }
        f64::from_bits(shared.min_bits.load(Ordering::Acquire))
    }

    /// [`FlowPool::min_max_flow_with`] on a throwaway submitter workspace, for one-shot
    /// callers without a warm [`FlowSolver`] of their own.
    pub fn min_max_flow(
        &self,
        arena: &Arc<FlowArena>,
        source: usize,
        sinks: &[usize],
        threads: usize,
    ) -> f64 {
        self.min_max_flow_with(&mut FlowSolver::new(), arena, source, sinks, threads)
    }

    /// Evaluates `probe` on every candidate concurrently (up to `lanes` lanes, the
    /// submitting thread one of them) and fills `results` with one verdict per
    /// candidate, in candidate order. The probe must be pure: results are
    /// bit-for-bit what a sequential `candidates.iter().map(probe)` would produce,
    /// regardless of how candidates landed on workers.
    ///
    /// `class` tags the queued helper tickets for reclaim accounting and lane
    /// reservation: [`TicketClass::Speculative`] batches queue at most
    /// `max_workers - 1` helpers so queued speculation always leaves one pool lane
    /// for co-resident fair-share work, and their reclaimed tickets count into
    /// [`FlowPool::speculation_cancelled`] rather than
    /// [`FlowPool::tickets_reclaimed`].
    ///
    /// A worker panic mid-batch is contained like a flow-ticket panic: the batch is
    /// poisoned, discarded, and every probe recomputed sequentially on the
    /// submitting thread (counted by [`FlowPool::panics_contained`]).
    pub fn probe_batch(
        &self,
        probe: &ProbeFn,
        candidates: &[(u64, f64)],
        lanes: usize,
        class: TicketClass,
        results: &mut Vec<bool>,
    ) {
        results.clear();
        let reserve = match class {
            TicketClass::FairShare => 0,
            TicketClass::Speculative => 1,
        };
        let helper_cap = self.max_workers.saturating_sub(reserve);
        let helpers = lanes
            .min(candidates.len())
            .saturating_sub(1)
            .min(helper_cap);
        if helpers == 0 {
            results.extend(candidates.iter().map(|&(tag, value)| probe(tag, value)));
            return;
        }
        self.ensure_workers(helpers);
        let shared = Arc::new(ProbeShared {
            probe: Arc::clone(probe),
            candidates: candidates.to_vec(),
            results: candidates.iter().map(|_| AtomicBool::new(false)).collect(),
            next: AtomicUsize::new(0),
            pending: Mutex::new(helpers),
            done: Condvar::new(),
            poisoned: AtomicBool::new(false),
        });
        {
            let mut state = self.queue.state.lock().expect("pool queue poisoned");
            for _ in 0..helpers {
                state.tickets.push_back(Ticket {
                    class,
                    work: TicketWork::Probe {
                        shared: Arc::clone(&shared),
                    },
                });
            }
        }
        self.queue.available.notify_all();
        // The submitter works its own share: progress never depends on a free worker.
        shared.drain();
        // Reclaim helper tickets no worker has picked up yet — same anti-starvation
        // escape hatch as the flow path, but accounted per ticket class.
        {
            let mut state = self.queue.state.lock().expect("pool queue poisoned");
            let mut reclaimed_fair = 0u64;
            let mut reclaimed_spec = 0u64;
            state.tickets.retain(|ticket| {
                let mine = matches!(&ticket.work, TicketWork::Probe { shared: s } if Arc::ptr_eq(s, &shared));
                if mine {
                    // Each reclaimed ticket is accounted by its own tag: cancelled
                    // speculation must never read as fair-share starvation pressure.
                    match ticket.class {
                        TicketClass::FairShare => reclaimed_fair += 1,
                        TicketClass::Speculative => reclaimed_spec += 1,
                    }
                }
                !mine
            });
            drop(state);
            let reclaimed = reclaimed_fair + reclaimed_spec;
            if reclaimed > 0 {
                if reclaimed_fair > 0 {
                    self.tickets_reclaimed
                        .fetch_add(reclaimed_fair, Ordering::Relaxed);
                }
                if reclaimed_spec > 0 {
                    self.speculation_cancelled
                        .fetch_add(reclaimed_spec, Ordering::Relaxed);
                }
                let mut pending = shared.pending.lock().expect("pool probe state poisoned");
                *pending -= reclaimed as usize;
                // No notify needed: this thread is the only waiter on `done`.
            }
        }
        let mut pending = shared.pending.lock().expect("pool probe state poisoned");
        while *pending > 0 {
            pending = shared
                .done
                .wait(pending)
                .expect("pool probe state poisoned");
        }
        drop(pending);
        if shared.poisoned.load(Ordering::Acquire) {
            // A worker panicked mid-batch: its claimed candidate may have been
            // abandoned with a stale verdict. Recompute every probe sequentially —
            // same result contract, one thread.
            self.panics_contained.fetch_add(1, Ordering::Relaxed);
            results.extend(candidates.iter().map(|&(tag, value)| probe(tag, value)));
            return;
        }
        results.extend(
            shared
                .results
                .iter()
                .map(|slot| slot.load(Ordering::Acquire)),
        );
    }
}

impl Drop for FlowPool {
    /// Clean shutdown: raise the flag, wake everyone, join every worker. Queued tickets
    /// are drained first (workers only exit on an empty queue), so no submitter is left
    /// waiting on an abandoned evaluation.
    fn drop(&mut self) {
        {
            let mut state = self.queue.state.lock().expect("pool queue poisoned");
            state.shutdown = true;
        }
        self.queue.available.notify_all();
        let workers = self.workers.get_mut().expect("pool worker list poisoned");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_arena(n: usize) -> FlowArena {
        // One sink has a much smaller flow than the others, so early-exit caps matter.
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push((0, v, if v == n / 2 { 0.5 } else { 10.0 }));
        }
        FlowArena::from_edges(n, &edges)
    }

    #[test]
    fn pooled_evaluation_matches_sequential() {
        let arena = Arc::new(wide_arena(40));
        let sinks: Vec<usize> = (1..40).collect();
        let expected = FlowSolver::new().min_max_flow(&arena, 0, &sinks);
        assert_eq!(expected, 0.5);
        let pool = FlowPool::new(4);
        for threads in [1usize, 2, 3, 8, 64] {
            assert_eq!(pool.min_max_flow(&arena, 0, &sinks, threads), expected);
        }
    }

    #[test]
    fn empty_sinks_are_infinite_and_spawn_nothing() {
        let pool = FlowPool::new(4);
        let arena = Arc::new(wide_arena(8));
        assert_eq!(pool.min_max_flow(&arena, 0, &[], 4), f64::INFINITY);
        assert_eq!(pool.spawned_workers(), 0);
    }

    #[test]
    fn workers_are_spawned_lazily_and_reused_across_calls() {
        let pool = FlowPool::new(3);
        let arena = Arc::new(wide_arena(32));
        let sinks: Vec<usize> = (1..32).collect();
        let expected = FlowSolver::new().min_max_flow(&arena, 0, &sinks);

        // Sequential requests never touch the pool.
        assert_eq!(pool.min_max_flow(&arena, 0, &sinks, 1), expected);
        assert_eq!(pool.spawned_workers(), 0);

        // The first parallel request spawns exactly the helpers it needs (lanes - 1,
        // capped at the pool maximum); every later call reuses them. This is the
        // spawn-counting acceptance test: no per-call thread spawn on the pooled path.
        assert_eq!(pool.min_max_flow(&arena, 0, &sinks, 3), expected);
        assert_eq!(pool.spawned_workers(), 2);
        for _ in 0..25 {
            assert_eq!(pool.min_max_flow(&arena, 0, &sinks, 8), expected);
            assert_eq!(
                pool.spawned_workers(),
                3,
                "a pooled call spawned a new thread"
            );
        }
    }

    #[test]
    fn submitter_arc_is_unique_again_after_the_call() {
        let pool = FlowPool::new(2);
        let mut arena = Arc::new(wide_arena(24));
        let sinks: Vec<usize> = (1..24).collect();
        let mut solver = FlowSolver::new();
        for _ in 0..10 {
            let _ = pool.min_max_flow_with(&mut solver, &arena, 0, &sinks, 4);
            // Every worker dropped its clone before the submitter was released, so the
            // caller can keep mutating its retained arena in place.
            assert!(
                Arc::get_mut(&mut arena).is_some(),
                "a worker still holds the arena"
            );
        }
    }

    #[test]
    fn zero_capacity_pool_degenerates_to_sequential() {
        let pool = FlowPool::new(0);
        let arena = Arc::new(wide_arena(16));
        let sinks: Vec<usize> = (1..16).collect();
        let expected = FlowSolver::new().min_max_flow(&arena, 0, &sinks);
        assert_eq!(pool.min_max_flow(&arena, 0, &sinks, 8), expected);
        assert_eq!(pool.spawned_workers(), 0);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = FlowPool::new(2);
        let arena = Arc::new(wide_arena(16));
        let sinks: Vec<usize> = (1..16).collect();
        let _ = pool.min_max_flow(&arena, 0, &sinks, 4);
        assert_eq!(pool.spawned_workers(), 2);
        drop(pool); // must not hang: shutdown drains the queue and joins both workers
    }

    #[test]
    fn global_pool_is_shared_and_capped() {
        let a = FlowPool::global() as *const FlowPool;
        let b = FlowPool::global() as *const FlowPool;
        assert_eq!(a, b);
        assert_eq!(FlowPool::global().max_workers(), GLOBAL_POOL_CAP);
    }

    #[test]
    fn a_panicking_evaluation_is_contained_and_parallelism_survives() {
        let pool = FlowPool::new(2);
        // Wide enough that draining the sink order takes far longer than a worker
        // wake-up: on a small arena an optimized submitter can finish the whole order
        // and reclaim both helper tickets before either worker dequeues one, and the
        // armed panic would never fire.
        let arena = Arc::new(wide_arena(1024));
        let sinks: Vec<usize> = (1..1024).collect();
        let expected = FlowSolver::new().min_max_flow(&arena, 0, &sinks);
        // Warm the pool so both workers exist before the fault is armed.
        assert_eq!(pool.min_max_flow(&arena, 0, &sinks, 3), expected);
        assert_eq!(pool.spawned_workers(), 2);
        // Panic tokens are process-global: a concurrently running test's worker may
        // consume one (its evaluation falls back sequentially and stays correct), and
        // ticket pickup races the submitter's own drain, so arm-and-evaluate until a
        // panic lands on this pool.
        let mut attempts = 0;
        while pool.panics_contained() == 0 {
            attempts += 1;
            assert!(attempts <= 500, "no injected panic ever reached this pool");
            arm_worker_panics(1);
            // Even the poisoned evaluation returns the exact sequential result.
            assert_eq!(pool.min_max_flow(&arena, 0, &sinks, 3), expected);
        }
        disarm_worker_panics();
        // Containment: no worker died and none was respawned — later evaluations keep
        // the full fan-out and exact results.
        assert_eq!(pool.spawned_workers(), 2);
        assert_eq!(pool.live_workers(), 2);
        let contained = pool.panics_contained();
        for _ in 0..10 {
            assert_eq!(pool.min_max_flow(&arena, 0, &sinks, 3), expected);
        }
        assert_eq!(pool.panics_contained(), contained);
    }

    #[test]
    fn worker_panic_guard_disarms_on_unwind() {
        // Regression: `run_fleet` used to disarm tokens only on its success path, so a
        // panic between arming and disarming leaked them into the next run. The guard
        // must clear its tokens even when dropped during an unwind.
        let armed = 1_000_000;
        let result = catch_unwind(|| {
            let _guard = WorkerPanicGuard::arm(armed);
            panic!("unwinding while holding the guard");
        });
        assert!(result.is_err());
        // Tokens are process-global and a concurrently running test may arm a few of
        // its own, so assert our block was cleared rather than demanding exactly zero.
        let leftover = disarm_worker_panics();
        assert!(leftover < armed, "guard leaked {leftover} tokens");
    }

    #[test]
    fn a_slow_submitter_cannot_starve_its_neighbours() {
        // The fairness contract at fleet scale: one shard stuck on a big evaluation
        // (the slow submitter, large arena) shares the pool with several shards
        // running small evaluations. Every fast evaluation must return the exact
        // sequential result regardless of what the slow one occupies — the submitters
        // drain their own orders and reclaim unpicked tickets rather than queueing
        // behind the big evaluation's tickets.
        let pool = Arc::new(FlowPool::new(2));
        let big = Arc::new(wide_arena(1024));
        let big_sinks: Vec<usize> = (1..1024).collect();
        let big_expected = FlowSolver::new().min_max_flow(&big, 0, &big_sinks);
        let small = Arc::new(wide_arena(24));
        let small_sinks: Vec<usize> = (1..24).collect();
        let small_expected = FlowSolver::new().min_max_flow(&small, 0, &small_sinks);
        // Ticket pickup races the submitters' own drains, so a single pass may see
        // every ticket either worker-served or reclaimed; loop until at least one
        // reclamation proves the anti-starvation path was exercised.
        let mut attempts = 0;
        while pool.tickets_reclaimed() == 0 {
            attempts += 1;
            assert!(attempts <= 500, "no ticket was ever reclaimed");
            std::thread::scope(|scope| {
                for submitter in 0..5 {
                    let pool = Arc::clone(&pool);
                    let (arena, sinks, expected) = if submitter == 0 {
                        (Arc::clone(&big), &big_sinks, big_expected)
                    } else {
                        (Arc::clone(&small), &small_sinks, small_expected)
                    };
                    scope.spawn(move || {
                        for _ in 0..4 {
                            assert_eq!(pool.min_max_flow(&arena, 0, sinks, 3), expected);
                        }
                    });
                }
            });
        }
        assert!(pool.spawned_workers() <= 2);
        assert_eq!(pool.live_workers(), pool.spawned_workers());
    }

    #[test]
    fn probe_batch_matches_sequential_evaluation() {
        let pool = FlowPool::new(3);
        let probe: ProbeFn = Arc::new(|tag, value| value < tag as f64 * 0.5);
        let candidates: Vec<(u64, f64)> = (0..64).map(|i| (i, (i as f64) * 0.3)).collect();
        let expected: Vec<bool> = candidates.iter().map(|&(t, v)| probe(t, v)).collect();
        let mut results = Vec::new();
        for lanes in [1usize, 2, 4, 64] {
            for class in [TicketClass::FairShare, TicketClass::Speculative] {
                pool.probe_batch(&probe, &candidates, lanes, class, &mut results);
                assert_eq!(results, expected, "lanes {lanes}, class {class:?}");
            }
        }
    }

    #[test]
    fn speculative_batches_reserve_a_pool_lane() {
        let pool = FlowPool::new(2);
        let probe: ProbeFn = Arc::new(|_, value| value >= 0.0);
        let candidates: Vec<(u64, f64)> = (0..64).map(|i| (i, i as f64)).collect();
        let mut results = Vec::new();
        // A speculative batch queues at most `max_workers - 1` helpers — one lane is
        // reserved for fair-share work — so no matter how many lanes it asks for, at
        // most one of this pool's two workers is ever spawned for it.
        pool.probe_batch(
            &probe,
            &candidates,
            64,
            TicketClass::Speculative,
            &mut results,
        );
        assert!(results.iter().all(|&b| b));
        assert!(pool.spawned_workers() <= 1);
        // A fair-share batch may use the full pool.
        pool.probe_batch(
            &probe,
            &candidates,
            64,
            TicketClass::FairShare,
            &mut results,
        );
        assert_eq!(pool.spawned_workers(), 2);
    }

    #[test]
    fn a_poisoned_probe_batch_is_recomputed_exactly() {
        let pool = FlowPool::new(2);
        let probe: ProbeFn = Arc::new(|tag, value| {
            std::thread::sleep(std::time::Duration::from_micros(20));
            (tag % 3 == 0) ^ (value < 4.0)
        });
        let candidates: Vec<(u64, f64)> = (0..64).map(|i| (i, i as f64 * 0.1)).collect();
        let expected: Vec<bool> = candidates.iter().map(|&(t, v)| probe(t, v)).collect();
        let mut results = Vec::new();
        // Warm the pool so workers exist before the fault is armed.
        pool.probe_batch(&probe, &candidates, 3, TicketClass::FairShare, &mut results);
        assert_eq!(results, expected);
        let mut attempts = 0;
        while pool.panics_contained() == 0 {
            attempts += 1;
            assert!(attempts <= 500, "no injected panic ever reached this pool");
            arm_worker_panics(1);
            // Even a poisoned batch returns the exact sequential verdicts.
            pool.probe_batch(&probe, &candidates, 3, TicketClass::FairShare, &mut results);
            assert_eq!(results, expected);
        }
        disarm_worker_panics();
        assert_eq!(pool.live_workers(), pool.spawned_workers());
    }

    #[test]
    fn a_speculating_searchers_unpicked_tickets_are_reclaimed_as_cancelled() {
        // The PR-7 `tickets_reclaimed` contract, extended to speculation: a searcher
        // whose speculative tickets never get picked up (workers busy elsewhere)
        // reclaims them itself, and they are accounted as cancelled speculation —
        // never as fair-share reclaim.
        let pool = Arc::new(FlowPool::new(2));
        let slow: ProbeFn = Arc::new(|_, value| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            value > 0.0
        });
        let fast: ProbeFn = Arc::new(|_, value| value > 0.0);
        let slow_cands: Vec<(u64, f64)> = (0..8).map(|i| (i, 1.0)).collect();
        let fast_cands: Vec<(u64, f64)> = (0..128).map(|i| (i, 1.0)).collect();
        let mut attempts = 0;
        while pool.speculation_cancelled() == 0 {
            attempts += 1;
            assert!(attempts <= 500, "no speculative ticket was ever reclaimed");
            std::thread::scope(|scope| {
                let pool_a = Arc::clone(&pool);
                let (slow, slow_cands) = (&slow, &slow_cands);
                scope.spawn(move || {
                    let mut results = Vec::new();
                    pool_a.probe_batch(slow, slow_cands, 2, TicketClass::Speculative, &mut results);
                    assert!(results.iter().all(|&b| b));
                });
                let pool_b = Arc::clone(&pool);
                let (fast, fast_cands) = (&fast, &fast_cands);
                scope.spawn(move || {
                    let mut results = Vec::new();
                    for _ in 0..4 {
                        pool_b.probe_batch(
                            fast,
                            fast_cands,
                            2,
                            TicketClass::Speculative,
                            &mut results,
                        );
                        assert!(results.iter().all(|&b| b));
                    }
                });
            });
        }
        // Only speculative tickets were ever queued on this pool, so nothing may
        // have landed in the fair-share reclaim counter.
        assert_eq!(pool.tickets_reclaimed(), 0);
    }

    #[test]
    fn speculation_cannot_starve_co_resident_fair_share_probes() {
        // Lane reservation under load: a speculative storm shares the pool with a
        // fair-share prober; every fair-share batch must come back exact, every
        // pass, no matter what the storm occupies.
        let pool = Arc::new(FlowPool::new(2));
        let storm: ProbeFn = Arc::new(|_, value| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            value > 0.5
        });
        let fair: ProbeFn = Arc::new(|tag, value| value * (tag as f64) < 100.0);
        let storm_cands: Vec<(u64, f64)> = (0..32).map(|i| (i, i as f64)).collect();
        let fair_cands: Vec<(u64, f64)> = (0..48).map(|i| (i, i as f64 * 0.7)).collect();
        let fair_expected: Vec<bool> = fair_cands.iter().map(|&(t, v)| fair(t, v)).collect();
        std::thread::scope(|scope| {
            let pool_storm = Arc::clone(&pool);
            let (storm, storm_cands) = (&storm, &storm_cands);
            scope.spawn(move || {
                let mut results = Vec::new();
                for _ in 0..8 {
                    pool_storm.probe_batch(
                        storm,
                        storm_cands,
                        3,
                        TicketClass::Speculative,
                        &mut results,
                    );
                }
            });
            let pool_fair = Arc::clone(&pool);
            let (fair, fair_cands, fair_expected) = (&fair, &fair_cands, &fair_expected);
            scope.spawn(move || {
                let mut results = Vec::new();
                for _ in 0..16 {
                    pool_fair.probe_batch(
                        fair,
                        fair_cands,
                        3,
                        TicketClass::FairShare,
                        &mut results,
                    );
                    assert_eq!(&results, fair_expected);
                }
            });
        });
        assert!(pool.spawned_workers() <= 2);
        assert_eq!(pool.live_workers(), pool.spawned_workers());
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(FlowPool::new(2));
        let arena = Arc::new(wide_arena(32));
        let sinks: Vec<usize> = (1..32).collect();
        let expected = FlowSolver::new().min_max_flow(&arena, 0, &sinks);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (pool, arena, sinks) = (Arc::clone(&pool), Arc::clone(&arena), &sinks);
                scope.spawn(move || {
                    for _ in 0..8 {
                        assert_eq!(pool.min_max_flow(&arena, 0, sinks, 3), expected);
                    }
                });
            }
        });
        assert!(pool.spawned_workers() <= 2);
    }
}
