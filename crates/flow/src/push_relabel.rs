//! FIFO push-relabel maximum-flow algorithm.
//!
//! Third independent solver, used by the property tests to cross-check Dinic and
//! Edmonds–Karp. The implementation is the textbook FIFO variant with `O(V³)` complexity,
//! which does not depend on the capacity values and is therefore safe for `f64` capacities.
//! The implementation lives in the CSR kernel ([`crate::csr::FlowSolver::push_relabel`]);
//! this module is the free-function entry point.

use crate::csr::FlowSolver;
use crate::graph::{FlowNetwork, FlowResult};

/// Computes a maximum flow from `source` to `sink` with the FIFO push-relabel algorithm.
///
/// Convenience wrapper building a one-shot CSR arena and solver workspace.
///
/// # Panics
///
/// Panics if `source` or `sink` is out of range.
#[must_use]
pub fn push_relabel_max_flow(network: &FlowNetwork, source: usize, sink: usize) -> FlowResult {
    assert!(source < network.num_nodes(), "source out of range");
    assert!(sink < network.num_nodes(), "sink out of range");
    let arena = network.arena();
    FlowSolver::with_capacity(network.num_nodes(), network.num_edges())
        .push_relabel(&arena, source, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::dinic_max_flow;
    use crate::graph::FlowNetwork;

    #[test]
    fn matches_dinic_on_textbook_network() {
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        let pr = push_relabel_max_flow(&net, 0, 5);
        let dn = dinic_max_flow(&net, 0, 5);
        assert!((pr.value - 23.0).abs() < 1e-9);
        assert!((pr.value - dn.value).abs() < 1e-9);
    }

    #[test]
    fn zero_flow_when_disconnected() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5.0);
        net.add_edge(2, 3, 5.0);
        let result = push_relabel_max_flow(&net, 0, 3);
        assert_eq!(result.value, 0.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 0.6);
        net.add_edge(0, 2, 0.4);
        net.add_edge(1, 3, 0.5);
        net.add_edge(2, 3, 0.9);
        let result = push_relabel_max_flow(&net, 0, 3);
        assert!((result.value - 0.9).abs() < 1e-9);
    }

    #[test]
    fn source_equals_sink_is_zero() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0);
        assert_eq!(push_relabel_max_flow(&net, 1, 1).value, 0.0);
    }
}
