//! FIFO push-relabel maximum-flow algorithm.
//!
//! Third independent solver, used by the property tests to cross-check Dinic and
//! Edmonds–Karp. The implementation is the textbook FIFO variant with `O(V³)` complexity,
//! which does not depend on the capacity values and is therefore safe for `f64` capacities.

use crate::eps;
use crate::graph::{FlowNetwork, FlowResult};
use std::collections::VecDeque;

/// Computes a maximum flow from `source` to `sink` with the FIFO push-relabel algorithm.
///
/// # Panics
///
/// Panics if `source` or `sink` is out of range.
#[must_use]
pub fn push_relabel_max_flow(network: &FlowNetwork, source: usize, sink: usize) -> FlowResult {
    assert!(source < network.num_nodes(), "source out of range");
    assert!(sink < network.num_nodes(), "sink out of range");
    let num_edges = network.num_edges();
    if source == sink {
        return FlowResult {
            value: 0.0,
            edge_flows: vec![0.0; num_edges],
        };
    }
    let n = network.num_nodes();
    let mut residual = network.residual();
    let mut height = vec![0_usize; n];
    let mut excess = vec![0.0_f64; n];
    let mut in_queue = vec![false; n];
    let mut queue = VecDeque::new();
    height[source] = n;

    // Saturate every arc leaving the source.
    let source_arcs: Vec<usize> = residual.adj[source].clone();
    for arc in source_arcs {
        let capacity = residual.cap[arc];
        if !eps::is_positive(capacity) {
            continue;
        }
        let to = residual.to[arc];
        residual.cap[arc] = 0.0;
        residual.cap[arc ^ 1] += capacity;
        excess[to] += capacity;
        excess[source] -= capacity;
        if to != sink && to != source && !in_queue[to] {
            in_queue[to] = true;
            queue.push_back(to);
        }
    }

    while let Some(node) = queue.pop_front() {
        in_queue[node] = false;
        discharge(
            &mut residual,
            node,
            source,
            sink,
            &mut height,
            &mut excess,
            &mut queue,
            &mut in_queue,
        );
    }

    FlowResult {
        value: excess[sink].max(0.0),
        edge_flows: residual.edge_flows(),
    }
}

#[allow(clippy::too_many_arguments)]
fn discharge(
    residual: &mut crate::graph::Residual,
    node: usize,
    source: usize,
    sink: usize,
    height: &mut [usize],
    excess: &mut [f64],
    queue: &mut VecDeque<usize>,
    in_queue: &mut [bool],
) {
    let n = height.len();
    while eps::is_positive(excess[node]) {
        let mut pushed_any = false;
        let arcs: Vec<usize> = residual.adj[node].clone();
        for arc in arcs {
            if !eps::is_positive(excess[node]) {
                break;
            }
            let to = residual.to[arc];
            if eps::is_positive(residual.cap[arc]) && height[node] == height[to] + 1 {
                let delta = excess[node].min(residual.cap[arc]);
                residual.cap[arc] -= delta;
                residual.cap[arc ^ 1] += delta;
                excess[node] -= delta;
                excess[to] += delta;
                pushed_any = true;
                if to != source && to != sink && !in_queue[to] {
                    in_queue[to] = true;
                    queue.push_back(to);
                }
            }
        }
        if eps::is_positive(excess[node]) && !pushed_any {
            // Relabel: raise the node just above its lowest admissible neighbour.
            let mut min_height = usize::MAX;
            for &arc in &residual.adj[node] {
                if eps::is_positive(residual.cap[arc]) {
                    min_height = min_height.min(height[residual.to[arc]]);
                }
            }
            if min_height == usize::MAX || min_height + 1 > 2 * n {
                // No admissible arc at all: the remaining excess cannot reach the sink.
                break;
            }
            height[node] = min_height + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::dinic_max_flow;
    use crate::graph::FlowNetwork;

    #[test]
    fn matches_dinic_on_textbook_network() {
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16.0);
        net.add_edge(0, 2, 13.0);
        net.add_edge(1, 2, 10.0);
        net.add_edge(2, 1, 4.0);
        net.add_edge(1, 3, 12.0);
        net.add_edge(3, 2, 9.0);
        net.add_edge(2, 4, 14.0);
        net.add_edge(4, 3, 7.0);
        net.add_edge(3, 5, 20.0);
        net.add_edge(4, 5, 4.0);
        let pr = push_relabel_max_flow(&net, 0, 5);
        let dn = dinic_max_flow(&net, 0, 5);
        assert!((pr.value - 23.0).abs() < 1e-9);
        assert!((pr.value - dn.value).abs() < 1e-9);
    }

    #[test]
    fn zero_flow_when_disconnected() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5.0);
        net.add_edge(2, 3, 5.0);
        let result = push_relabel_max_flow(&net, 0, 3);
        assert_eq!(result.value, 0.0);
    }

    #[test]
    fn fractional_capacities() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 0.6);
        net.add_edge(0, 2, 0.4);
        net.add_edge(1, 3, 0.5);
        net.add_edge(2, 3, 0.9);
        let result = push_relabel_max_flow(&net, 0, 3);
        assert!((result.value - 0.9).abs() < 1e-9);
    }

    #[test]
    fn source_equals_sink_is_zero() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1.0);
        assert_eq!(push_relabel_max_flow(&net, 1, 1).value, 0.0);
    }
}
