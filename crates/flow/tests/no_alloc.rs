//! Asserts the CSR kernel's zero-allocation contract: once a [`FlowSolver`]'s buffers are
//! warm, repeated value-only solves (`max_flow`, `max_flow_limited`, `min_max_flow`) must
//! not touch the heap. A counting global allocator makes any regression an immediate test
//! failure instead of a silent performance cliff.

use bmp_flow::{FlowArena, FlowSolver};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every allocation (and reallocation).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A layered network large enough that a solve exercises BFS, DFS and multiple phases.
fn layered_arena(layers: usize, width: usize) -> FlowArena {
    let node = |layer: usize, index: usize| 2 + layer * width + index;
    let mut edges = Vec::new();
    for i in 0..width {
        edges.push((0, node(0, i), 1.0 + (i % 7) as f64));
        edges.push((node(layers - 1, i), 1, 1.0 + (i % 5) as f64));
    }
    for layer in 0..layers - 1 {
        for i in 0..width {
            for j in 0..width {
                if (i + 3 * j + layer) % 3 != 0 {
                    edges.push((
                        node(layer, i),
                        node(layer + 1, j),
                        0.5 + ((i + j) % 4) as f64,
                    ));
                }
            }
        }
    }
    FlowArena::from_edges(2 + layers * width, &edges)
}

#[test]
fn warm_solver_performs_no_heap_allocation() {
    let arena = layered_arena(5, 8);
    let sinks: Vec<usize> = (2..arena.num_nodes()).collect();
    let mut solver = FlowSolver::new();

    // Warm-up: sizes every buffer (cap, levels, cursors, queues, sink ordering).
    let reference_flow = solver.max_flow(&arena, 0, 1);
    let reference_min = solver.min_max_flow(&arena, 0, &sinks);
    assert!(reference_flow > 0.0);
    assert!(reference_min >= 0.0);

    let before = allocation_count();
    for _ in 0..50 {
        let flow = solver.max_flow(&arena, 0, 1);
        assert_eq!(flow, reference_flow);
        let limited = solver.max_flow_limited(&arena, 0, 1, reference_flow / 2.0);
        assert!(limited >= reference_flow / 2.0);
        let minimum = solver.min_max_flow(&arena, 0, &sinks);
        assert_eq!(minimum, reference_min);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "hot-path solves allocated {} time(s); the workspace must be fully reused",
        after - before
    );
}

#[test]
fn shrinking_to_a_smaller_arena_allocates_nothing_new() {
    let big = layered_arena(5, 8);
    let small = layered_arena(2, 3);
    let mut solver = FlowSolver::new();
    let big_flow = solver.max_flow(&big, 0, 1);
    let small_flow = solver.max_flow(&small, 0, 1);

    let before = allocation_count();
    for _ in 0..20 {
        assert_eq!(solver.max_flow(&small, 0, 1), small_flow);
        assert_eq!(solver.max_flow(&big, 0, 1), big_flow);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "alternating between warm arenas must not reallocate buffers"
    );
}
