//! Property tests cross-checking the three max-flow solvers on random networks.

use bmp_flow::{
    dinic_max_flow, edmonds_karp_max_flow, min_cut, push_relabel_max_flow, FlowNetwork,
};
use proptest::prelude::*;

/// Strategy generating a random directed network with up to `max_nodes` nodes.
fn random_network(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = FlowNetwork> {
    (2..=max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec(
            (0..n, 0..n, 0.0_f64..20.0),
            0..=max_edges,
        )
        .prop_map(move |edges| {
            let mut net = FlowNetwork::new(n);
            for (from, to, cap) in edges {
                if from != to {
                    net.add_edge(from, to, cap);
                }
            }
            net
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solvers_agree(net in random_network(8, 24)) {
        let s = 0;
        let t = net.num_nodes() - 1;
        let dn = dinic_max_flow(&net, s, t);
        let ek = edmonds_karp_max_flow(&net, s, t);
        let pr = push_relabel_max_flow(&net, s, t);
        let tol = 1e-6 * dn.value.abs().max(1.0);
        prop_assert!((dn.value - ek.value).abs() <= tol,
            "dinic {} vs edmonds-karp {}", dn.value, ek.value);
        prop_assert!((dn.value - pr.value).abs() <= tol,
            "dinic {} vs push-relabel {}", dn.value, pr.value);
    }

    #[test]
    fn flows_are_valid(net in random_network(8, 24)) {
        let s = 0;
        let t = net.num_nodes() - 1;
        let dn = dinic_max_flow(&net, s, t);
        let ek = edmonds_karp_max_flow(&net, s, t);
        prop_assert!(dn.is_valid(&net, s, t));
        prop_assert!(ek.is_valid(&net, s, t));
    }

    #[test]
    fn max_flow_equals_min_cut(net in random_network(8, 24)) {
        let s = 0;
        let t = net.num_nodes() - 1;
        let (cut, flow) = min_cut(&net, s, t);
        let tol = 1e-6 * flow.value.abs().max(1.0);
        prop_assert!((cut.value - flow.value).abs() <= tol,
            "cut {} vs flow {}", cut.value, flow.value);
        prop_assert!(cut.source_side.contains(&s));
        prop_assert!(!cut.source_side.contains(&t) || flow.value == 0.0 && cut.source_side.len() == net.num_nodes());
    }

    #[test]
    fn flow_bounded_by_source_capacity(net in random_network(8, 24)) {
        let s = 0;
        let t = net.num_nodes() - 1;
        let dn = dinic_max_flow(&net, s, t);
        let out_cap = net.out_capacity(s);
        let in_cap = net.in_capacity(t);
        prop_assert!(dn.value <= out_cap + 1e-6);
        prop_assert!(dn.value <= in_cap + 1e-6);
    }

    #[test]
    fn adding_an_edge_never_decreases_flow(net in random_network(7, 18), extra_cap in 0.1_f64..5.0) {
        let s = 0;
        let t = net.num_nodes() - 1;
        let before = dinic_max_flow(&net, s, t).value;
        let mut bigger = net.clone();
        bigger.add_edge(s, t, extra_cap);
        let after = dinic_max_flow(&bigger, s, t).value;
        prop_assert!(after + 1e-9 >= before);
        prop_assert!((after - (before + extra_cap)).abs() <= 1e-6 * (after.max(1.0)));
    }
}

#[test]
fn min_cut_source_side_excludes_sink_when_flow_saturates() {
    let mut net = FlowNetwork::new(4);
    net.add_edge(0, 1, 2.0);
    net.add_edge(1, 2, 1.0);
    net.add_edge(2, 3, 2.0);
    let (cut, flow) = min_cut(&net, 0, 3);
    assert!((flow.value - 1.0).abs() < 1e-9);
    assert!(!cut.source_side.contains(&3));
}
