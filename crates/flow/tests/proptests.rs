//! Property tests cross-checking the three max-flow solvers on random networks, plus the
//! CSR-kernel equivalences: batched multi-sink evaluation (with early-exit caps, and with
//! the parallel fan-out) must agree exactly with naive per-sink evaluation, and a reused
//! solver workspace must behave like a fresh one.

use bmp_flow::{
    dinic_max_flow, edmonds_karp_max_flow, min_cut, min_max_flow_parallel, push_relabel_max_flow,
    FlowNetwork, FlowSolver, WarmFlowCache,
};
use proptest::prelude::*;

/// Strategy generating a random directed network with up to `max_nodes` nodes.
fn random_network(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = FlowNetwork> {
    (2..=max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 0.0_f64..20.0), 0..=max_edges).prop_map(
            move |edges| {
                let mut net = FlowNetwork::new(n);
                for (from, to, cap) in edges {
                    if from != to {
                        net.add_edge(from, to, cap);
                    }
                }
                net
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solvers_agree(net in random_network(8, 24)) {
        let s = 0;
        let t = net.num_nodes() - 1;
        let dn = dinic_max_flow(&net, s, t);
        let ek = edmonds_karp_max_flow(&net, s, t);
        let pr = push_relabel_max_flow(&net, s, t);
        let tol = 1e-6 * dn.value.abs().max(1.0);
        prop_assert!((dn.value - ek.value).abs() <= tol,
            "dinic {} vs edmonds-karp {}", dn.value, ek.value);
        prop_assert!((dn.value - pr.value).abs() <= tol,
            "dinic {} vs push-relabel {}", dn.value, pr.value);
    }

    #[test]
    fn flows_are_valid(net in random_network(8, 24)) {
        let s = 0;
        let t = net.num_nodes() - 1;
        let dn = dinic_max_flow(&net, s, t);
        let ek = edmonds_karp_max_flow(&net, s, t);
        prop_assert!(dn.is_valid(&net, s, t));
        prop_assert!(ek.is_valid(&net, s, t));
    }

    #[test]
    fn max_flow_equals_min_cut(net in random_network(8, 24)) {
        let s = 0;
        let t = net.num_nodes() - 1;
        let (cut, flow) = min_cut(&net, s, t);
        let tol = 1e-6 * flow.value.abs().max(1.0);
        prop_assert!((cut.value - flow.value).abs() <= tol,
            "cut {} vs flow {}", cut.value, flow.value);
        prop_assert!(cut.source_side.contains(&s));
        prop_assert!(!cut.source_side.contains(&t) || flow.value == 0.0 && cut.source_side.len() == net.num_nodes());
    }

    #[test]
    fn flow_bounded_by_source_capacity(net in random_network(8, 24)) {
        let s = 0;
        let t = net.num_nodes() - 1;
        let dn = dinic_max_flow(&net, s, t);
        let out_cap = net.out_capacity(s);
        let in_cap = net.in_capacity(t);
        prop_assert!(dn.value <= out_cap + 1e-6);
        prop_assert!(dn.value <= in_cap + 1e-6);
    }

    #[test]
    fn batched_min_max_flow_equals_naive_per_sink(net in random_network(9, 28)) {
        let source = 0;
        let sinks: Vec<usize> = (1..net.num_nodes()).collect();
        // Naive: one full Dinic per sink, minimum of the exact values.
        let naive = sinks
            .iter()
            .map(|&sink| dinic_max_flow(&net, source, sink).value)
            .fold(f64::INFINITY, f64::min);
        // Batched: shared arena, in-capacity ordering, early-exit caps. Must be *exactly*
        // equal — capping only ever truncates solves that cannot lower the minimum.
        let arena = net.arena();
        let batched = FlowSolver::new().min_max_flow(&arena, source, &sinks);
        prop_assert_eq!(batched, naive, "batched {} vs naive {}", batched, naive);
        // Parallel fan-out with a shared atomic minimum: same exactness argument.
        let parallel = min_max_flow_parallel(&arena, source, &sinks, 4);
        prop_assert_eq!(parallel, naive, "parallel {} vs naive {}", parallel, naive);
    }

    #[test]
    fn batched_evaluation_is_sink_order_invariant(net in random_network(8, 24)) {
        let sinks: Vec<usize> = (1..net.num_nodes()).collect();
        let mut reversed = sinks.clone();
        reversed.reverse();
        let arena = net.arena();
        let mut solver = FlowSolver::new();
        let forward = solver.min_max_flow(&arena, 0, &sinks);
        let backward = solver.min_max_flow(&arena, 0, &reversed);
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn reused_workspace_matches_fresh_solver(
        first in random_network(8, 24),
        second in random_network(5, 12),
    ) {
        // One solver solving across two different networks (different sizes) must report
        // the same values as fresh solvers: buffers are fully re-initialised per solve.
        let arena_a = first.arena();
        let arena_b = second.arena();
        let mut reused = FlowSolver::new();
        for _ in 0..3 {
            let a = reused.max_flow(&arena_a, 0, first.num_nodes() - 1);
            let b = reused.max_flow(&arena_b, 0, second.num_nodes() - 1);
            prop_assert_eq!(a, dinic_max_flow(&first, 0, first.num_nodes() - 1).value);
            prop_assert_eq!(b, dinic_max_flow(&second, 0, second.num_nodes() - 1).value);
        }
    }

    #[test]
    fn csr_solvers_match_on_arena_and_network_paths(net in random_network(8, 24)) {
        // The free functions (arena built per call) and a long-lived solver on a shared
        // arena are the same code path with different buffer lifetimes; cross-check all
        // three algorithms through both entries.
        let s = 0;
        let t = net.num_nodes() - 1;
        let arena = net.arena();
        let mut solver = FlowSolver::new();
        prop_assert_eq!(solver.max_flow(&arena, s, t), dinic_max_flow(&net, s, t).value);
        prop_assert_eq!(
            solver.edmonds_karp(&arena, s, t).value,
            edmonds_karp_max_flow(&net, s, t).value
        );
        prop_assert_eq!(
            solver.push_relabel(&arena, s, t).value,
            push_relabel_max_flow(&net, s, t).value
        );
    }

    #[test]
    fn incremental_capacity_update_equals_rebuild(
        net in random_network(8, 24),
        new_caps in proptest::collection::vec(0.0_f64..20.0, 0..=24),
    ) {
        // Overwriting capacities in place must be indistinguishable from rebuilding the
        // arena from scratch over the same edge set with the new capacities.
        let mut updated = net.arena();
        let edges: Vec<(usize, usize, f64)> = (0..updated.num_edges())
            .map(|k| {
                let (from, to) = updated.edge_endpoints(k);
                let cap = new_caps.get(k).copied().unwrap_or(updated.edge_capacity(k));
                (from, to, cap)
            })
            .collect();
        updated.set_edge_capacities(&edges.iter().map(|&(_, _, cap)| cap).collect::<Vec<_>>());
        let rebuilt = bmp_flow::FlowArena::from_edges(net.num_nodes(), &edges);
        prop_assert_eq!(&updated, &rebuilt);
        let sinks: Vec<usize> = (1..net.num_nodes()).collect();
        let mut solver = FlowSolver::new();
        let incremental = solver.min_max_flow(&updated, 0, &sinks);
        let fresh = solver.min_max_flow(&rebuilt, 0, &sinks);
        prop_assert_eq!(incremental, fresh);
    }

    #[test]
    fn sparse_capacity_patch_equals_rebuild(
        net in random_network(8, 24),
        patches in proptest::collection::vec((0usize..24, 0.0_f64..20.0), 0..=12),
    ) {
        // Patching an arbitrary (possibly repeating) subset of edge capacities must be
        // bit-for-bit the arena rebuilt from scratch with the final capacities — the
        // contract the journaled evaluation path of `bmp_core::solver::EvalCtx` rests on.
        let mut patched = net.arena();
        if patched.num_edges() == 0 {
            return Ok(());
        }
        let patches: Vec<(usize, f64)> = patches
            .into_iter()
            .map(|(edge, cap)| (edge % patched.num_edges(), cap))
            .collect();
        patched.patch_edge_capacities(&patches);
        let edges: Vec<(usize, usize, f64)> = (0..patched.num_edges())
            .map(|k| {
                let (from, to) = patched.edge_endpoints(k);
                // Last write wins, matching the patch semantics.
                let cap = patches
                    .iter()
                    .rev()
                    .find(|&&(edge, _)| edge == k)
                    .map_or(net.edges()[k].capacity, |&(_, cap)| cap);
                (from, to, cap)
            })
            .collect();
        let rebuilt = bmp_flow::FlowArena::from_edges(net.num_nodes(), &edges);
        prop_assert_eq!(&patched, &rebuilt);
        let sinks: Vec<usize> = (1..net.num_nodes()).collect();
        let mut solver = FlowSolver::new();
        let incremental = solver.min_max_flow(&patched, 0, &sinks);
        let fresh = solver.min_max_flow(&rebuilt, 0, &sinks);
        prop_assert_eq!(incremental, fresh);
    }

    #[test]
    fn warm_residual_reuse_matches_cold_across_rescales(
        net in random_network(8, 24),
        rescales in proptest::collection::vec(
            proptest::collection::vec(0.0_f64..20.0, 0..=24), 1..=6),
    ) {
        // Warm residual reuse must return bit-for-bit the cold batched result after
        // every in-place capacity rewrite — including hard cuts that force the drain
        // machinery through reverse residual paths — and the retained states must stay
        // feasible flows throughout (residual + flow = capacity arc-by-arc,
        // conservation at interior nodes, value = net sink inflow).
        let mut arena = net.arena();
        let sinks: Vec<usize> = (1..net.num_nodes()).collect();
        let mut cold = FlowSolver::new();
        let mut warm = FlowSolver::new();
        let mut cache = WarmFlowCache::new();
        for new_caps in rescales {
            let caps: Vec<f64> = (0..arena.num_edges())
                .map(|k| new_caps.get(k).copied().unwrap_or(arena.edge_capacity(k)))
                .collect();
            arena.set_edge_capacities(&caps);
            let expected = cold.min_max_flow(&arena, 0, &sinks);
            let got = warm.min_max_flow_warm(&arena, 0, &sinks, &mut cache);
            prop_assert_eq!(expected, got, "warm {} vs cold {}", got, expected);
            let invariants = cache.validate(&arena);
            prop_assert!(invariants.is_ok(), "warm state invariants: {:?}", invariants);
        }
    }

    #[test]
    fn warm_limited_solves_respect_the_cold_contract(
        net in random_network(8, 24),
        steps in proptest::collection::vec(
            (proptest::collection::vec(0.0_f64..20.0, 0..=24), 0.1_f64..30.0), 1..=6),
    ) {
        // Single-sink limited solves through the warm path: below the limit the value
        // must be exactly the cold one (it steers running minimums); at or above it the
        // contract is one-sided, matching `max_flow_limited`.
        let mut arena = net.arena();
        let sink = net.num_nodes() - 1;
        let mut cold = FlowSolver::new();
        let mut warm = FlowSolver::new();
        let mut cache = WarmFlowCache::new();
        for (new_caps, limit) in steps {
            let caps: Vec<f64> = (0..arena.num_edges())
                .map(|k| new_caps.get(k).copied().unwrap_or(arena.edge_capacity(k)))
                .collect();
            arena.set_edge_capacities(&caps);
            let expected = cold.max_flow_limited(&arena, 0, sink, limit);
            let got = warm.max_flow_limited_warm(&arena, 0, sink, limit, &mut cache);
            if expected < limit {
                prop_assert_eq!(expected, got, "warm {} vs cold {}", got, expected);
            } else {
                prop_assert!(got >= limit, "warm {} below the limit {}", got, limit);
            }
            let invariants = cache.validate(&arena);
            prop_assert!(invariants.is_ok(), "warm state invariants: {:?}", invariants);
        }
    }

    #[test]
    fn adding_an_edge_never_decreases_flow(net in random_network(7, 18), extra_cap in 0.1_f64..5.0) {
        let s = 0;
        let t = net.num_nodes() - 1;
        let before = dinic_max_flow(&net, s, t).value;
        let mut bigger = net.clone();
        bigger.add_edge(s, t, extra_cap);
        let after = dinic_max_flow(&bigger, s, t).value;
        prop_assert!(after + 1e-9 >= before);
        prop_assert!((after - (before + extra_cap)).abs() <= 1e-6 * (after.max(1.0)));
    }
}

#[test]
fn min_cut_source_side_excludes_sink_when_flow_saturates() {
    let mut net = FlowNetwork::new(4);
    net.add_edge(0, 1, 2.0);
    net.add_edge(1, 2, 1.0);
    net.add_edge(2, 3, 2.0);
    let (cut, flow) = min_cut(&net, 0, 3);
    assert!((flow.value - 1.0).abs() < 1e-9);
    assert!(!cut.source_side.contains(&3));
}
