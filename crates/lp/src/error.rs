//! Error type of the LP solver.

use std::fmt;

/// Errors returned by [`crate::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The constraint set is empty of feasible points.
    Infeasible,
    /// The objective is unbounded above over the feasible region.
    Unbounded,
    /// The problem description is malformed (e.g. a constraint has the wrong arity).
    Malformed(String),
    /// The solver exceeded its iteration budget (should not happen with Bland's rule; kept as
    /// a defensive error instead of looping forever).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::Malformed(reason) => write!(f, "malformed linear program: {reason}"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            LpError::Infeasible.to_string(),
            "linear program is infeasible"
        );
        assert_eq!(
            LpError::Unbounded.to_string(),
            "linear program is unbounded"
        );
        assert!(LpError::Malformed("bad arity".into())
            .to_string()
            .contains("bad arity"));
        assert!(LpError::IterationLimit.to_string().contains("iteration"));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(LpError::Unbounded);
        assert!(e.to_string().contains("unbounded"));
    }
}
