//! A small, dependency-free, dense two-phase simplex solver.
//!
//! The broadcast reproduction uses linear programming only as a *ground truth oracle*: on
//! small instances, the optimal cyclic throughput and the optimal acyclic throughput for a
//! fixed ordering can be written as linear programs over the transfer rates `c_{i,j}` and
//! per-receiver flows. Solving these LPs independently validates the closed-form bounds
//! (Lemma 5.1) and the combinatorial algorithms (Algorithms 1 and 2) of the paper.
//!
//! The solver handles problems of the form
//!
//! ```text
//! maximize    c · x
//! subject to  A_i · x  {≤, ≥, =}  b_i     for every constraint i
//!             x ≥ 0
//! ```
//!
//! with a dense tableau and the standard two-phase method (phase 1 drives artificial
//! variables out of the basis, phase 2 optimises the real objective). Bland's rule is used
//! after a stall threshold to guarantee termination.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod problem;
pub mod simplex;
pub mod tableau;

pub use error::LpError;
pub use problem::{Constraint, ConstraintOp, LpProblem, LpSolution};
pub use simplex::solve;
