//! Problem description API for the simplex solver.

use crate::error::LpError;

/// Sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `A_i · x ≤ b_i`
    Le,
    /// `A_i · x ≥ b_i`
    Ge,
    /// `A_i · x = b_i`
    Eq,
}

/// A single linear constraint `coeffs · x  op  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficients of the constraint, one per variable.
    pub coeffs: Vec<f64>,
    /// Sense of the constraint.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program `maximize c · x subject to constraints, x ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct LpProblem {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates a maximisation problem with `num_vars` non-negative variables and an initially
    /// zero objective.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        LpProblem {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.num_vars, "variable {var} out of range");
        self.objective[var] = coeff;
    }

    /// Replaces the whole objective vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector does not have exactly one entry per variable.
    pub fn set_objective_vector(&mut self, objective: Vec<f64>) {
        assert_eq!(
            objective.len(),
            self.num_vars,
            "objective must have one coefficient per variable"
        );
        self.objective = objective;
    }

    /// The current objective vector.
    #[must_use]
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints added so far.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds a dense constraint.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Malformed`] if the coefficient vector has the wrong arity or any
    /// value is not finite.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<f64>,
        op: ConstraintOp,
        rhs: f64,
    ) -> Result<(), LpError> {
        if coeffs.len() != self.num_vars {
            return Err(LpError::Malformed(format!(
                "constraint has {} coefficients but the problem has {} variables",
                coeffs.len(),
                self.num_vars
            )));
        }
        if coeffs.iter().any(|c| !c.is_finite()) || !rhs.is_finite() {
            return Err(LpError::Malformed(
                "constraint contains a non-finite value".to_string(),
            ));
        }
        self.constraints.push(Constraint { coeffs, op, rhs });
        Ok(())
    }

    /// Adds a sparse constraint given as `(variable, coefficient)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Malformed`] if a variable index is out of range or a value is not
    /// finite.
    pub fn add_sparse_constraint(
        &mut self,
        terms: &[(usize, f64)],
        op: ConstraintOp,
        rhs: f64,
    ) -> Result<(), LpError> {
        let mut coeffs = vec![0.0; self.num_vars];
        for &(var, coeff) in terms {
            if var >= self.num_vars {
                return Err(LpError::Malformed(format!(
                    "variable {var} out of range (problem has {} variables)",
                    self.num_vars
                )));
            }
            coeffs[var] += coeff;
        }
        self.add_constraint(coeffs, op, rhs)
    }
}

/// An optimal solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal values of the decision variables.
    pub values: Vec<f64>,
}

impl LpSolution {
    /// Value of variable `var` in the optimal solution.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    #[must_use]
    pub fn value(&self, var: usize) -> f64 {
        self.values[var]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_problem() {
        let mut lp = LpProblem::new(3);
        lp.set_objective(0, 1.0);
        lp.set_objective(2, -2.0);
        lp.add_constraint(vec![1.0, 1.0, 0.0], ConstraintOp::Le, 4.0)
            .unwrap();
        lp.add_sparse_constraint(&[(2, 1.0), (0, 0.5)], ConstraintOp::Ge, 1.0)
            .unwrap();
        assert_eq!(lp.num_vars(), 3);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.objective(), &[1.0, 0.0, -2.0]);
        assert_eq!(lp.constraints()[1].coeffs, vec![0.5, 0.0, 1.0]);
    }

    #[test]
    fn sparse_constraint_accumulates_duplicate_terms() {
        let mut lp = LpProblem::new(2);
        lp.add_sparse_constraint(&[(0, 1.0), (0, 2.0)], ConstraintOp::Eq, 3.0)
            .unwrap();
        assert_eq!(lp.constraints()[0].coeffs, vec![3.0, 0.0]);
    }

    #[test]
    fn rejects_bad_arity() {
        let mut lp = LpProblem::new(2);
        let err = lp
            .add_constraint(vec![1.0], ConstraintOp::Le, 1.0)
            .unwrap_err();
        assert!(matches!(err, LpError::Malformed(_)));
    }

    #[test]
    fn rejects_non_finite_values() {
        let mut lp = LpProblem::new(1);
        assert!(lp
            .add_constraint(vec![f64::NAN], ConstraintOp::Le, 1.0)
            .is_err());
        assert!(lp
            .add_constraint(vec![1.0], ConstraintOp::Le, f64::INFINITY)
            .is_err());
    }

    #[test]
    fn rejects_out_of_range_sparse_var() {
        let mut lp = LpProblem::new(1);
        assert!(lp
            .add_sparse_constraint(&[(3, 1.0)], ConstraintOp::Le, 1.0)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_objective_out_of_range_panics() {
        let mut lp = LpProblem::new(1);
        lp.set_objective(5, 1.0);
    }

    #[test]
    fn set_objective_vector_replaces_all() {
        let mut lp = LpProblem::new(2);
        lp.set_objective_vector(vec![3.0, 4.0]);
        assert_eq!(lp.objective(), &[3.0, 4.0]);
    }
}
