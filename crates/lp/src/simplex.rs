//! Two-phase simplex driver.

use crate::error::LpError;
use crate::problem::{ConstraintOp, LpProblem, LpSolution};
use crate::tableau::{Tableau, LP_EPS};

/// Maximum number of pivots before [`LpError::IterationLimit`] is returned. Bland's rule is
/// switched on long before this threshold, so hitting it indicates a bug rather than a hard
/// problem.
const MAX_ITERATIONS: usize = 200_000;

/// Number of Dantzig-rule pivots after which the solver switches to Bland's rule.
const BLAND_THRESHOLD: usize = 5_000;

/// Solves a linear program with the two-phase simplex method.
///
/// # Errors
///
/// * [`LpError::Infeasible`] when no feasible point exists,
/// * [`LpError::Unbounded`] when the objective is unbounded above,
/// * [`LpError::IterationLimit`] if the pivot budget is exhausted (defensive).
pub fn solve(problem: &LpProblem) -> Result<LpSolution, LpError> {
    let num_vars = problem.num_vars();
    let num_constraints = problem.num_constraints();
    if num_constraints == 0 {
        // Without constraints the problem is unbounded unless the objective is non-positive,
        // in which case x = 0 is optimal.
        if problem.objective().iter().any(|&c| c > LP_EPS) {
            return Err(LpError::Unbounded);
        }
        return Ok(LpSolution {
            objective: 0.0,
            values: vec![0.0; num_vars],
        });
    }

    // Count auxiliary columns: one slack/surplus per inequality, one artificial per
    // Ge/Eq constraint (and per Le constraint with negative rhs, after normalisation).
    let mut normalized: Vec<(Vec<f64>, ConstraintOp, f64)> = Vec::with_capacity(num_constraints);
    for constraint in problem.constraints() {
        let mut coeffs = constraint.coeffs.clone();
        let mut op = constraint.op;
        let mut rhs = constraint.rhs;
        if rhs < 0.0 {
            for c in &mut coeffs {
                *c = -*c;
            }
            rhs = -rhs;
            op = match op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
        normalized.push((coeffs, op, rhs));
    }

    let num_slacks = normalized
        .iter()
        .filter(|(_, op, _)| *op != ConstraintOp::Eq)
        .count();
    let num_artificials = normalized
        .iter()
        .filter(|(_, op, _)| *op != ConstraintOp::Le)
        .count();
    let total_cols = num_vars + num_slacks + num_artificials;

    let mut tableau = Tableau::new(num_constraints, total_cols);
    let mut artificial_cols = Vec::with_capacity(num_artificials);
    let mut next_slack = num_vars;
    let mut next_artificial = num_vars + num_slacks;

    for (row, (coeffs, op, rhs)) in normalized.iter().enumerate() {
        for (col, &value) in coeffs.iter().enumerate() {
            tableau.set(row, col, value);
        }
        tableau.set(row, total_cols, *rhs);
        match op {
            ConstraintOp::Le => {
                tableau.set(row, next_slack, 1.0);
                tableau.set_basis(row, next_slack);
                next_slack += 1;
            }
            ConstraintOp::Ge => {
                tableau.set(row, next_slack, -1.0);
                next_slack += 1;
                tableau.set(row, next_artificial, 1.0);
                tableau.set_basis(row, next_artificial);
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
            ConstraintOp::Eq => {
                tableau.set(row, next_artificial, 1.0);
                tableau.set_basis(row, next_artificial);
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
        }
    }

    let is_artificial = {
        let mut mask = vec![false; total_cols];
        for &col in &artificial_cols {
            mask[col] = true;
        }
        mask
    };

    // Phase 1: maximise −Σ artificials (i.e. drive them to zero).
    if !artificial_cols.is_empty() {
        for &col in &artificial_cols {
            tableau.set(num_constraints, col, -1.0);
        }
        // The artificials start basic with cost −1: reduce the objective row accordingly.
        for row in 0..num_constraints {
            if is_artificial[tableau.basis(row)] {
                tableau.reduce_objective_by_row(row, -1.0);
            }
        }
        let allowed = vec![true; total_cols];
        run_simplex(&mut tableau, &allowed)?;
        if tableau.objective_value() < -1e-7 {
            return Err(LpError::Infeasible);
        }
        // Pivot out any artificial variable that is still basic (at value zero).
        for row in 0..num_constraints {
            if is_artificial[tableau.basis(row)] {
                let mut pivoted = false;
                for col in 0..num_vars + num_slacks {
                    if tableau.get(row, col).abs() > 1e-7 {
                        tableau.pivot(row, col);
                        pivoted = true;
                        break;
                    }
                }
                // If no pivot column exists the row is redundant; leaving the artificial basic
                // at value zero is harmless because its column is forbidden in phase 2.
                let _ = pivoted;
            }
        }
    }

    // Phase 2: install the real objective.
    for col in 0..total_cols {
        tableau.set(num_constraints, col, 0.0);
    }
    tableau.set(num_constraints, total_cols, 0.0);
    for (col, &cost) in problem.objective().iter().enumerate() {
        tableau.set(num_constraints, col, cost);
    }
    for row in 0..num_constraints {
        let basic = tableau.basis(row);
        if basic < num_vars {
            let cost = problem.objective()[basic];
            tableau.reduce_objective_by_row(row, cost);
        }
    }
    let mut allowed = vec![true; total_cols];
    for &col in &artificial_cols {
        allowed[col] = false;
    }
    run_simplex(&mut tableau, &allowed)?;

    let values: Vec<f64> = (0..num_vars)
        .map(|var| {
            let v = tableau.variable_value(var);
            if v.abs() < LP_EPS {
                0.0
            } else {
                v
            }
        })
        .collect();
    Ok(LpSolution {
        objective: tableau.objective_value(),
        values,
    })
}

/// Runs simplex pivots until optimality, switching to Bland's rule after a stall threshold.
fn run_simplex(tableau: &mut Tableau, allowed: &[bool]) -> Result<(), LpError> {
    for iteration in 0..MAX_ITERATIONS {
        let bland = iteration >= BLAND_THRESHOLD;
        let Some(entering) = tableau.choose_entering(allowed, bland) else {
            return Ok(());
        };
        let Some(leaving) = tableau.choose_leaving(entering) else {
            return Err(LpError::Unbounded);
        };
        tableau.pivot(leaving, entering);
    }
    Err(LpError::IterationLimit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, LpProblem};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn basic_maximization() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2 → x=2, y=2, obj=10.
        let mut lp = LpProblem::new(2);
        lp.set_objective_vector(vec![3.0, 2.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Le, 4.0)
            .unwrap();
        lp.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 2.0)
            .unwrap();
        let solution = solve(&lp).unwrap();
        assert_close(solution.objective, 10.0);
        assert_close(solution.value(0), 2.0);
        assert_close(solution.value(1), 2.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 3, x <= 1 → obj = 3.
        let mut lp = LpProblem::new(2);
        lp.set_objective_vector(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 3.0)
            .unwrap();
        lp.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 1.0)
            .unwrap();
        let solution = solve(&lp).unwrap();
        assert_close(solution.objective, 3.0);
        assert_close(solution.value(0) + solution.value(1), 3.0);
    }

    #[test]
    fn ge_constraints_and_minimization_via_negation() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1  ⇔  max −2x − 3y.
        let mut lp = LpProblem::new(2);
        lp.set_objective_vector(vec![-2.0, -3.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Ge, 4.0)
            .unwrap();
        lp.add_constraint(vec![1.0, 0.0], ConstraintOp::Ge, 1.0)
            .unwrap();
        let solution = solve(&lp).unwrap();
        // Optimal: x = 4, y = 0, cost 8.
        assert_close(solution.objective, -8.0);
        assert_close(solution.value(0), 4.0);
        assert_close(solution.value(1), 0.0);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LpProblem::new(1);
        lp.set_objective_vector(vec![1.0]);
        lp.add_constraint(vec![1.0], ConstraintOp::Le, 1.0).unwrap();
        lp.add_constraint(vec![1.0], ConstraintOp::Ge, 2.0).unwrap();
        assert_eq!(solve(&lp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LpProblem::new(2);
        lp.set_objective_vector(vec![1.0, 0.0]);
        lp.add_constraint(vec![0.0, 1.0], ConstraintOp::Le, 5.0)
            .unwrap();
        assert_eq!(solve(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn no_constraints_zero_objective() {
        let lp = LpProblem::new(3);
        let solution = solve(&lp).unwrap();
        assert_close(solution.objective, 0.0);
        assert_eq!(solution.values, vec![0.0; 3]);
        let mut lp2 = LpProblem::new(1);
        lp2.set_objective_vector(vec![1.0]);
        assert_eq!(solve(&lp2).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // x ≥ 2 written as −x ≤ −2.
        let mut lp = LpProblem::new(1);
        lp.set_objective_vector(vec![-1.0]);
        lp.add_constraint(vec![-1.0], ConstraintOp::Le, -2.0)
            .unwrap();
        let solution = solve(&lp).unwrap();
        assert_close(solution.value(0), 2.0);
        assert_close(solution.objective, -2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP (multiple constraints active at the optimum).
        let mut lp = LpProblem::new(2);
        lp.set_objective_vector(vec![1.0, 1.0]);
        lp.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 1.0)
            .unwrap();
        lp.add_constraint(vec![1.0, 0.0], ConstraintOp::Le, 1.0)
            .unwrap();
        lp.add_constraint(vec![0.0, 1.0], ConstraintOp::Le, 1.0)
            .unwrap();
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Le, 2.0)
            .unwrap();
        let solution = solve(&lp).unwrap();
        assert_close(solution.objective, 2.0);
    }

    #[test]
    fn redundant_equalities() {
        // Two identical equality constraints; one row becomes redundant after phase 1.
        let mut lp = LpProblem::new(2);
        lp.set_objective_vector(vec![1.0, 2.0]);
        lp.add_constraint(vec![1.0, 1.0], ConstraintOp::Eq, 2.0)
            .unwrap();
        lp.add_constraint(vec![2.0, 2.0], ConstraintOp::Eq, 4.0)
            .unwrap();
        let solution = solve(&lp).unwrap();
        assert_close(solution.objective, 4.0);
        assert_close(solution.value(1), 2.0);
    }

    #[test]
    fn larger_random_style_problem() {
        // max Σ x_i with a budget per pair; optimum is attained at a vertex easy to verify.
        let mut lp = LpProblem::new(4);
        lp.set_objective_vector(vec![1.0, 1.0, 1.0, 1.0]);
        lp.add_constraint(vec![1.0, 1.0, 0.0, 0.0], ConstraintOp::Le, 1.0)
            .unwrap();
        lp.add_constraint(vec![0.0, 0.0, 1.0, 1.0], ConstraintOp::Le, 2.0)
            .unwrap();
        lp.add_constraint(vec![1.0, 0.0, 1.0, 0.0], ConstraintOp::Le, 1.5)
            .unwrap();
        let solution = solve(&lp).unwrap();
        assert_close(solution.objective, 3.0);
    }

    #[test]
    fn transportation_like_problem() {
        // Two suppliers (capacities 3 and 2), two consumers (demands 2 and 3), cost 1 on all
        // routes except route (1,0) which costs 3. Minimise cost ⇔ maximise the negation.
        // Variables: x00, x01, x10, x11.
        let mut lp = LpProblem::new(4);
        lp.set_objective_vector(vec![-1.0, -1.0, -3.0, -1.0]);
        lp.add_constraint(vec![1.0, 1.0, 0.0, 0.0], ConstraintOp::Le, 3.0)
            .unwrap();
        lp.add_constraint(vec![0.0, 0.0, 1.0, 1.0], ConstraintOp::Le, 2.0)
            .unwrap();
        lp.add_constraint(vec![1.0, 0.0, 1.0, 0.0], ConstraintOp::Eq, 2.0)
            .unwrap();
        lp.add_constraint(vec![0.0, 1.0, 0.0, 1.0], ConstraintOp::Eq, 3.0)
            .unwrap();
        let solution = solve(&lp).unwrap();
        // Optimal: x00 = 2, x01 = 1, x11 = 2 → cost 5.
        assert_close(solution.objective, -5.0);
        assert_close(solution.value(2), 0.0);
    }
}
