//! Dense simplex tableau with elementary pivot operations.

/// Numerical tolerance used by the tableau operations.
pub const LP_EPS: f64 = 1e-9;

/// A dense simplex tableau.
///
/// The tableau stores one row per constraint plus a final objective row, and one column per
/// variable plus a final right-hand-side column. The objective row holds *reduced costs*
/// (`c_j − z_j` for a maximisation problem); its right-hand-side entry equals the negated
/// current objective value. The invariant is maintained by [`Tableau::pivot`].
#[derive(Debug, Clone)]
pub struct Tableau {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    basis: Vec<usize>,
}

impl Tableau {
    /// Creates a tableau with `rows` constraint rows and `cols` variable columns, filled with
    /// zeros, and an all-zero basis (callers must set the basis before pivoting).
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Tableau {
            rows,
            cols,
            data: vec![0.0; (rows + 1) * (cols + 1)],
            basis: vec![0; rows],
        }
    }

    /// Number of constraint rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of variable columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn index(&self, row: usize, col: usize) -> usize {
        row * (self.cols + 1) + col
    }

    /// Reads entry `(row, col)`; `row == rows()` addresses the objective row and
    /// `col == cols()` addresses the right-hand side.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[self.index(row, col)]
    }

    /// Writes entry `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        let idx = self.index(row, col);
        self.data[idx] = value;
    }

    /// Adds `value` to entry `(row, col)`.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        let idx = self.index(row, col);
        self.data[idx] += value;
    }

    /// Right-hand side of constraint `row`.
    #[must_use]
    pub fn rhs(&self, row: usize) -> f64 {
        self.get(row, self.cols)
    }

    /// The basic variable of constraint `row`.
    #[must_use]
    pub fn basis(&self, row: usize) -> usize {
        self.basis[row]
    }

    /// Declares `var` to be the basic variable of constraint `row`.
    pub fn set_basis(&mut self, row: usize, var: usize) {
        self.basis[row] = var;
    }

    /// Current objective value (negated right-hand side of the objective row).
    #[must_use]
    pub fn objective_value(&self) -> f64 {
        -self.get(self.rows, self.cols)
    }

    /// Reduced cost of column `col`.
    #[must_use]
    pub fn reduced_cost(&self, col: usize) -> f64 {
        self.get(self.rows, col)
    }

    /// Subtracts `factor ×` constraint row `row` from the objective row. Used when installing
    /// an objective whose basic variables have non-zero cost.
    pub fn reduce_objective_by_row(&mut self, row: usize, factor: f64) {
        if factor == 0.0 {
            return;
        }
        for col in 0..=self.cols {
            let value = self.get(row, col);
            self.add(self.rows, col, -factor * value);
        }
    }

    /// Pivots on `(pivot_row, pivot_col)`: normalises the pivot row and eliminates the pivot
    /// column from every other row (objective row included), then updates the basis.
    ///
    /// # Panics
    ///
    /// Panics if the pivot element is (numerically) zero.
    pub fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let pivot_value = self.get(pivot_row, pivot_col);
        assert!(
            pivot_value.abs() > LP_EPS,
            "pivot element too small: {pivot_value}"
        );
        // Normalise the pivot row.
        for col in 0..=self.cols {
            let idx = self.index(pivot_row, col);
            self.data[idx] /= pivot_value;
        }
        // Eliminate the pivot column from the other rows.
        for row in 0..=self.rows {
            if row == pivot_row {
                continue;
            }
            let factor = self.get(row, pivot_col);
            if factor.abs() <= LP_EPS {
                // Still clear the (tiny) entry to keep the column clean.
                self.set(row, pivot_col, 0.0);
                continue;
            }
            for col in 0..=self.cols {
                let value = self.get(pivot_row, col);
                let idx = self.index(row, col);
                self.data[idx] -= factor * value;
            }
            self.set(row, pivot_col, 0.0);
        }
        self.basis[pivot_row] = pivot_col;
    }

    /// Selects an entering column with positive reduced cost among `allowed` columns.
    ///
    /// When `bland` is false the most positive reduced cost wins (Dantzig's rule); otherwise
    /// the smallest-index eligible column wins (Bland's rule, which prevents cycling).
    #[must_use]
    pub fn choose_entering(&self, allowed: &[bool], bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (col, &is_allowed) in allowed.iter().enumerate().take(self.cols) {
            if !is_allowed {
                continue;
            }
            let rc = self.reduced_cost(col);
            if rc > LP_EPS {
                if bland {
                    return Some(col);
                }
                if best.is_none_or(|(_, value)| rc > value) {
                    best = Some((col, rc));
                }
            }
        }
        best.map(|(col, _)| col)
    }

    /// Selects the leaving row for the given entering column with the minimum-ratio test.
    /// Ties are broken towards the smallest basic-variable index (Bland-compatible). Returns
    /// `None` when the column is unbounded.
    #[must_use]
    pub fn choose_leaving(&self, entering: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for row in 0..self.rows {
            let coeff = self.get(row, entering);
            if coeff > LP_EPS {
                let ratio = self.rhs(row) / coeff;
                match best {
                    None => best = Some((row, ratio)),
                    Some((best_row, best_ratio)) => {
                        if ratio < best_ratio - LP_EPS
                            || ((ratio - best_ratio).abs() <= LP_EPS
                                && self.basis[row] < self.basis[best_row])
                        {
                            best = Some((row, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(row, _)| row)
    }

    /// Extracts the value of variable `var` in the current basic solution.
    #[must_use]
    pub fn variable_value(&self, var: usize) -> f64 {
        for row in 0..self.rows {
            if self.basis[row] == var {
                return self.rhs(row);
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the tableau for: maximize 3x + 2y s.t. x + y ≤ 4, x ≤ 2 (slacks s1, s2).
    fn small_tableau() -> Tableau {
        let mut t = Tableau::new(2, 4);
        // Row 0: x + y + s1 = 4.
        t.set(0, 0, 1.0);
        t.set(0, 1, 1.0);
        t.set(0, 2, 1.0);
        t.set(0, 4, 4.0);
        t.set_basis(0, 2);
        // Row 1: x + s2 = 2.
        t.set(1, 0, 1.0);
        t.set(1, 3, 1.0);
        t.set(1, 4, 2.0);
        t.set_basis(1, 3);
        // Objective row: reduced costs = c because the initial basis has zero cost.
        t.set(2, 0, 3.0);
        t.set(2, 1, 2.0);
        t
    }

    #[test]
    fn pivot_solves_small_problem() {
        let mut t = small_tableau();
        let allowed = vec![true; 4];
        let mut iterations = 0;
        while let Some(col) = t.choose_entering(&allowed, false) {
            let row = t.choose_leaving(col).expect("bounded");
            t.pivot(row, col);
            iterations += 1;
            assert!(iterations < 10);
        }
        // Optimum: x = 2, y = 2, objective 10.
        assert!((t.objective_value() - 10.0).abs() < 1e-9);
        assert!((t.variable_value(0) - 2.0).abs() < 1e-9);
        assert!((t.variable_value(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bland_rule_picks_smallest_index() {
        let t = small_tableau();
        let allowed = vec![true; 4];
        assert_eq!(t.choose_entering(&allowed, true), Some(0));
        assert_eq!(t.choose_entering(&allowed, false), Some(0));
    }

    #[test]
    fn entering_respects_allowed_mask() {
        let t = small_tableau();
        let allowed = vec![false, true, true, true];
        assert_eq!(t.choose_entering(&allowed, false), Some(1));
        let none_allowed = vec![false; 4];
        assert_eq!(t.choose_entering(&none_allowed, false), None);
    }

    #[test]
    fn leaving_row_is_min_ratio() {
        let t = small_tableau();
        // Column 0 has ratios 4 and 2 → row 1 leaves.
        assert_eq!(t.choose_leaving(0), Some(1));
        // Column 1 only appears in row 0.
        assert_eq!(t.choose_leaving(1), Some(0));
    }

    #[test]
    fn unbounded_column_has_no_leaving_row() {
        let mut t = Tableau::new(1, 2);
        t.set(0, 0, -1.0);
        t.set(0, 1, 1.0);
        t.set(0, 2, 1.0);
        t.set_basis(0, 1);
        t.set(1, 0, 1.0);
        assert_eq!(t.choose_leaving(0), None);
    }

    #[test]
    #[should_panic(expected = "pivot element too small")]
    fn pivot_on_zero_panics() {
        let mut t = Tableau::new(1, 1);
        t.set_basis(0, 0);
        t.pivot(0, 0);
    }

    #[test]
    fn reduce_objective_by_row() {
        let mut t = Tableau::new(1, 2);
        t.set(0, 0, 1.0);
        t.set(0, 1, 2.0);
        t.set(0, 2, 3.0);
        t.set(1, 0, 5.0);
        t.reduce_objective_by_row(0, 5.0);
        assert!((t.get(1, 0) - 0.0).abs() < 1e-12);
        assert!((t.get(1, 1) + 10.0).abs() < 1e-12);
        assert!((t.get(1, 2) + 15.0).abs() < 1e-12);
        assert!((t.objective_value() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn variable_value_of_nonbasic_is_zero() {
        let t = small_tableau();
        assert_eq!(t.variable_value(0), 0.0);
        assert_eq!(t.variable_value(2), 4.0);
    }
}
