//! Bandwidth distributions used in the average-case study (Appendix XII, Figure 19).
//!
//! The paper samples node bandwidths from six distributions:
//!
//! 1. `Unif100` — uniform on `[1, 100]`,
//! 2. `Power1` / `Power2` — Pareto with mean 100 and standard deviation 100 / 1000,
//! 3. `LN1` / `LN2` — log-normal with mean 100 and standard deviation 100 / 1000,
//! 4. `PLab` — uniform sampling from outgoing bandwidths measured on PlanetLab.
//!
//! The PlanetLab measurement set is not redistributable, so [`PlanetLabLike`] substitutes a
//! fixed synthetic empirical distribution with the same qualitative shape (a heavy
//! low-bandwidth mode, a broad middle and a small fraction of very fast links); see DESIGN.md.
//! All samplers are implemented from scratch on top of `rand` so that no extra statistical
//! dependency is needed.

use crate::error::PlatformError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A distribution over outgoing bandwidths.
pub trait BandwidthDistribution {
    /// Draws one bandwidth sample. Samples are always strictly positive.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;

    /// Short human-readable name (used in experiment outputs).
    fn name(&self) -> &str;

    /// Draws `count` samples.
    fn sample_many(&self, count: usize, rng: &mut dyn rand::RngCore) -> Vec<f64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

impl<D: BandwidthDistribution + ?Sized> BandwidthDistribution for Box<D> {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        (**self).sample(rng)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Uniform distribution on `[low, high]` (the paper's `Unif100` uses `[1, 100]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformBandwidth {
    low: f64,
    high: f64,
}

impl UniformBandwidth {
    /// Creates a uniform distribution on `[low, high]`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < low ≤ high` and both bounds are finite.
    pub fn new(low: f64, high: f64) -> Result<Self, PlatformError> {
        if !(low.is_finite() && high.is_finite()) || low <= 0.0 || high < low {
            return Err(PlatformError::InvalidParameter {
                name: "uniform bounds",
                reason: format!("need 0 < low <= high, got [{low}, {high}]"),
            });
        }
        Ok(UniformBandwidth { low, high })
    }

    /// The paper's `Unif100` distribution: uniform on `[1, 100]`.
    #[must_use]
    pub fn unif100() -> Self {
        UniformBandwidth {
            low: 1.0,
            high: 100.0,
        }
    }
}

impl BandwidthDistribution for UniformBandwidth {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen();
        self.low + u * (self.high - self.low)
    }

    fn name(&self) -> &str {
        "Unif"
    }
}

/// Pareto (power-law) distribution parameterised by its mean and standard deviation.
///
/// With shape `α > 2` and scale `x_m`, the Pareto law has mean `α x_m / (α − 1)` and
/// coefficient of variation `CV² = 1 / (α (α − 2))`; the constructor inverts these relations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoBandwidth {
    shape: f64,
    scale: f64,
    label: ParetoLabel,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ParetoLabel {
    Power1,
    Power2,
    Custom,
}

impl ParetoBandwidth {
    /// Creates a Pareto distribution with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are finite and strictly positive.
    pub fn from_mean_std(mean: f64, std: f64) -> Result<Self, PlatformError> {
        if !(mean.is_finite() && std.is_finite()) || mean <= 0.0 || std <= 0.0 {
            return Err(PlatformError::InvalidParameter {
                name: "pareto mean/std",
                reason: format!("need positive finite values, got mean={mean}, std={std}"),
            });
        }
        let cv2 = (std / mean) * (std / mean);
        // α(α − 2) = 1 / CV²  ⇒  α = 1 + sqrt(1 + 1/CV²)
        let shape = 1.0 + (1.0 + 1.0 / cv2).sqrt();
        let scale = mean * (shape - 1.0) / shape;
        Ok(ParetoBandwidth {
            shape,
            scale,
            label: ParetoLabel::Custom,
        })
    }

    /// The paper's `Power1` distribution: mean 100, standard deviation 100.
    #[must_use]
    pub fn power1() -> Self {
        let mut d = Self::from_mean_std(100.0, 100.0).expect("valid parameters");
        d.label = ParetoLabel::Power1;
        d
    }

    /// The paper's `Power2` distribution: mean 100, standard deviation 1000.
    #[must_use]
    pub fn power2() -> Self {
        let mut d = Self::from_mean_std(100.0, 1000.0).expect("valid parameters");
        d.label = ParetoLabel::Power2;
        d
    }

    /// Shape parameter `α`.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `x_m` (minimum value of the support).
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Theoretical mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.shape * self.scale / (self.shape - 1.0)
    }
}

impl BandwidthDistribution for ParetoBandwidth {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        // Inverse-transform sampling: X = x_m / U^{1/α}.
        let mut u: f64 = rng.gen();
        if u <= f64::MIN_POSITIVE {
            u = f64::MIN_POSITIVE;
        }
        self.scale / u.powf(1.0 / self.shape)
    }

    fn name(&self) -> &str {
        match self.label {
            ParetoLabel::Power1 => "Power1",
            ParetoLabel::Power2 => "Power2",
            ParetoLabel::Custom => "Pareto",
        }
    }
}

/// Log-normal distribution parameterised by its mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalBandwidth {
    mu: f64,
    sigma: f64,
    label: LogNormalLabel,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum LogNormalLabel {
    Ln1,
    Ln2,
    Custom,
}

impl LogNormalBandwidth {
    /// Creates a log-normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are finite and strictly positive.
    pub fn from_mean_std(mean: f64, std: f64) -> Result<Self, PlatformError> {
        if !(mean.is_finite() && std.is_finite()) || mean <= 0.0 || std <= 0.0 {
            return Err(PlatformError::InvalidParameter {
                name: "log-normal mean/std",
                reason: format!("need positive finite values, got mean={mean}, std={std}"),
            });
        }
        let cv2 = (std / mean) * (std / mean);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Ok(LogNormalBandwidth {
            mu,
            sigma: sigma2.sqrt(),
            label: LogNormalLabel::Custom,
        })
    }

    /// The paper's `LN1` distribution: mean 100, standard deviation 100.
    #[must_use]
    pub fn ln1() -> Self {
        let mut d = Self::from_mean_std(100.0, 100.0).expect("valid parameters");
        d.label = LogNormalLabel::Ln1;
        d
    }

    /// The paper's `LN2` distribution: mean 100, standard deviation 1000.
    #[must_use]
    pub fn ln2() -> Self {
        let mut d = Self::from_mean_std(100.0, 1000.0).expect("valid parameters");
        d.label = LogNormalLabel::Ln2;
        d
    }

    /// Location parameter `μ` of the underlying normal.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter `σ` of the underlying normal.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

/// Draws one standard normal variate with the Box–Muller transform.
pub fn standard_normal(rng: &mut dyn rand::RngCore) -> f64 {
    let mut u1: f64 = rng.gen();
    if u1 <= f64::MIN_POSITIVE {
        u1 = f64::MIN_POSITIVE;
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

impl BandwidthDistribution for LogNormalBandwidth {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    fn name(&self) -> &str {
        match self.label {
            LogNormalLabel::Ln1 => "LN1",
            LogNormalLabel::Ln2 => "LN2",
            LogNormalLabel::Custom => "LogNormal",
        }
    }
}

/// Synthetic PlanetLab-like empirical distribution (substitute for the paper's `PLab` set).
///
/// The distribution is the piecewise-linear inverse CDF through the quantile table below,
/// expressed in Mbit/s. It reproduces the qualitative shape of PlanetLab uplink capacities:
/// a non-negligible fraction of slow, DSL-like links, a broad middle range and a small
/// fraction of very fast (NREN-connected) hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanetLabLike {
    /// `(cumulative probability, bandwidth)` pairs, strictly increasing in both coordinates.
    quantiles: Vec<(f64, f64)>,
}

impl Default for PlanetLabLike {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanetLabLike {
    /// The default synthetic quantile table.
    #[must_use]
    pub fn new() -> Self {
        PlanetLabLike {
            quantiles: vec![
                (0.00, 0.3),
                (0.10, 0.8),
                (0.25, 2.0),
                (0.40, 5.0),
                (0.55, 12.0),
                (0.70, 35.0),
                (0.82, 90.0),
                (0.92, 250.0),
                (0.98, 600.0),
                (1.00, 1000.0),
            ],
        }
    }

    /// Builds a distribution from a custom quantile table.
    ///
    /// # Errors
    ///
    /// Returns an error unless the table has at least two rows, starts at probability 0, ends
    /// at probability 1, and is strictly increasing in probability and non-decreasing in value
    /// with positive values.
    pub fn from_quantiles(quantiles: Vec<(f64, f64)>) -> Result<Self, PlatformError> {
        let invalid = |reason: String| PlatformError::InvalidParameter {
            name: "quantiles",
            reason,
        };
        if quantiles.len() < 2 {
            return Err(invalid("need at least two rows".to_string()));
        }
        if (quantiles[0].0 - 0.0).abs() > 1e-12
            || (quantiles[quantiles.len() - 1].0 - 1.0).abs() > 1e-12
        {
            return Err(invalid("table must span probabilities 0 to 1".to_string()));
        }
        for w in quantiles.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(invalid(
                    "probabilities must be strictly increasing".to_string(),
                ));
            }
            if w[1].1 < w[0].1 {
                return Err(invalid("values must be non-decreasing".to_string()));
            }
        }
        if quantiles.iter().any(|&(_, v)| v <= 0.0 || !v.is_finite()) {
            return Err(invalid("values must be positive and finite".to_string()));
        }
        Ok(PlanetLabLike { quantiles })
    }

    /// Evaluates the inverse CDF at probability `p ∈ [0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        for w in self.quantiles.windows(2) {
            let (p0, v0) = w[0];
            let (p1, v1) = w[1];
            if p <= p1 {
                let t = if p1 > p0 { (p - p0) / (p1 - p0) } else { 0.0 };
                return v0 + t * (v1 - v0);
            }
        }
        self.quantiles[self.quantiles.len() - 1].1
    }
}

impl BandwidthDistribution for PlanetLabLike {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    fn name(&self) -> &str {
        "PLab"
    }
}

/// Degenerate distribution returning a constant bandwidth (useful for homogeneous platforms
/// and for deterministic tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantBandwidth {
    value: f64,
}

impl ConstantBandwidth {
    /// Creates a constant distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `value` is finite and strictly positive.
    pub fn new(value: f64) -> Result<Self, PlatformError> {
        if !value.is_finite() || value <= 0.0 {
            return Err(PlatformError::InvalidParameter {
                name: "constant bandwidth",
                reason: format!("need a positive finite value, got {value}"),
            });
        }
        Ok(ConstantBandwidth { value })
    }
}

impl BandwidthDistribution for ConstantBandwidth {
    fn sample(&self, _rng: &mut dyn rand::RngCore) -> f64 {
        self.value
    }

    fn name(&self) -> &str {
        "Const"
    }
}

/// The six named distributions of the paper's Figure 19, as a closed enum for experiment
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NamedDistribution {
    /// Uniform on `[1, 100]`.
    Unif100,
    /// Pareto, mean 100, standard deviation 100.
    Power1,
    /// Pareto, mean 100, standard deviation 1000.
    Power2,
    /// Log-normal, mean 100, standard deviation 100.
    Ln1,
    /// Log-normal, mean 100, standard deviation 1000.
    Ln2,
    /// PlanetLab-like synthetic empirical distribution.
    PLab,
}

impl NamedDistribution {
    /// All six distributions, in the order used by the paper's Figure 19.
    #[must_use]
    pub fn all() -> [NamedDistribution; 6] {
        [
            NamedDistribution::Ln1,
            NamedDistribution::Ln2,
            NamedDistribution::Power1,
            NamedDistribution::Power2,
            NamedDistribution::Unif100,
            NamedDistribution::PLab,
        ]
    }

    /// Short name matching the paper's labels.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            NamedDistribution::Unif100 => "Unif100",
            NamedDistribution::Power1 => "Power1",
            NamedDistribution::Power2 => "Power2",
            NamedDistribution::Ln1 => "LN1",
            NamedDistribution::Ln2 => "LN2",
            NamedDistribution::PLab => "PLab",
        }
    }

    /// Instantiates the sampler for this distribution.
    #[must_use]
    pub fn build(&self) -> Box<dyn BandwidthDistribution + Send + Sync> {
        match self {
            NamedDistribution::Unif100 => Box::new(UniformBandwidth::unif100()),
            NamedDistribution::Power1 => Box::new(ParetoBandwidth::power1()),
            NamedDistribution::Power2 => Box::new(ParetoBandwidth::power2()),
            NamedDistribution::Ln1 => Box::new(LogNormalBandwidth::ln1()),
            NamedDistribution::Ln2 => Box::new(LogNormalBandwidth::ln2()),
            NamedDistribution::PLab => Box::new(PlanetLabLike::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    fn empirical_mean_std(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn uniform_bounds_respected() {
        let d = UniformBandwidth::unif100();
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((1.0..=100.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_close_to_midpoint() {
        let d = UniformBandwidth::new(10.0, 20.0).unwrap();
        let mut r = rng();
        let samples = d.sample_many(20_000, &mut r);
        let (mean, _) = empirical_mean_std(&samples);
        assert!((mean - 15.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn uniform_rejects_bad_bounds() {
        assert!(UniformBandwidth::new(0.0, 10.0).is_err());
        assert!(UniformBandwidth::new(5.0, 1.0).is_err());
        assert!(UniformBandwidth::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn pareto_parameterisation_matches_moments() {
        let d = ParetoBandwidth::power1();
        // CV = 1 → α = 1 + √2, mean back-computed from (α, x_m) must be 100.
        assert!((d.shape() - (1.0 + 2.0_f64.sqrt())).abs() < 1e-12);
        assert!((d.mean() - 100.0).abs() < 1e-9);
        let d2 = ParetoBandwidth::power2();
        assert!((d2.mean() - 100.0).abs() < 1e-9);
        assert!(d2.shape() < d.shape(), "heavier tail has smaller shape");
    }

    #[test]
    fn pareto_empirical_mean_close() {
        let d = ParetoBandwidth::power1();
        let mut r = rng();
        let samples = d.sample_many(200_000, &mut r);
        let (mean, _) = empirical_mean_std(&samples);
        assert!((mean - 100.0).abs() < 5.0, "mean = {mean}");
        assert!(samples.iter().all(|&x| x >= d.scale() - 1e-12));
    }

    #[test]
    fn pareto_rejects_bad_parameters() {
        assert!(ParetoBandwidth::from_mean_std(-1.0, 10.0).is_err());
        assert!(ParetoBandwidth::from_mean_std(10.0, 0.0).is_err());
        assert!(ParetoBandwidth::from_mean_std(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn lognormal_empirical_moments_close() {
        let d = LogNormalBandwidth::ln1();
        let mut r = rng();
        let samples = d.sample_many(200_000, &mut r);
        let (mean, std) = empirical_mean_std(&samples);
        assert!((mean - 100.0).abs() < 3.0, "mean = {mean}");
        assert!((std - 100.0).abs() < 10.0, "std = {std}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_rejects_bad_parameters() {
        assert!(LogNormalBandwidth::from_mean_std(0.0, 1.0).is_err());
        assert!(LogNormalBandwidth::from_mean_std(1.0, -1.0).is_err());
    }

    #[test]
    fn lognormal_names() {
        assert_eq!(LogNormalBandwidth::ln1().name(), "LN1");
        assert_eq!(LogNormalBandwidth::ln2().name(), "LN2");
        assert_eq!(
            LogNormalBandwidth::from_mean_std(5.0, 5.0).unwrap().name(),
            "LogNormal"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut r)).collect();
        let (mean, std) = empirical_mean_std(&samples);
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((std - 1.0).abs() < 0.02, "std = {std}");
    }

    #[test]
    fn planetlab_quantile_interpolation() {
        let d = PlanetLabLike::new();
        assert!((d.quantile(0.0) - 0.3).abs() < 1e-12);
        assert!((d.quantile(1.0) - 1000.0).abs() < 1e-12);
        // Midway between the 0.10 and 0.25 breakpoints.
        let q = d.quantile(0.175);
        assert!(q > 0.8 && q < 2.0);
        // Clamping outside [0, 1].
        assert_eq!(d.quantile(-0.5), d.quantile(0.0));
        assert_eq!(d.quantile(1.5), d.quantile(1.0));
    }

    #[test]
    fn planetlab_samples_within_support() {
        let d = PlanetLabLike::new();
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((0.3..=1000.0).contains(&x));
        }
    }

    #[test]
    fn planetlab_is_heavy_tailed() {
        let d = PlanetLabLike::new();
        let mut r = rng();
        let samples = d.sample_many(100_000, &mut r);
        let (mean, _) = empirical_mean_std(&samples);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            mean > 2.0 * median,
            "mean {mean} should exceed twice the median {median}"
        );
    }

    #[test]
    fn planetlab_custom_table_validation() {
        assert!(PlanetLabLike::from_quantiles(vec![(0.0, 1.0)]).is_err());
        assert!(PlanetLabLike::from_quantiles(vec![(0.1, 1.0), (1.0, 2.0)]).is_err());
        assert!(PlanetLabLike::from_quantiles(vec![(0.0, 2.0), (1.0, 1.0)]).is_err());
        assert!(PlanetLabLike::from_quantiles(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(PlanetLabLike::from_quantiles(vec![(0.0, 1.0), (1.0, 2.0)]).is_ok());
    }

    #[test]
    fn constant_distribution() {
        let d = ConstantBandwidth::new(42.0).unwrap();
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 42.0);
        assert_eq!(d.sample_many(3, &mut r), vec![42.0; 3]);
        assert!(ConstantBandwidth::new(0.0).is_err());
    }

    #[test]
    fn named_distributions_build_and_label() {
        for named in NamedDistribution::all() {
            let dist = named.build();
            let mut r = rng();
            let x = dist.sample(&mut r);
            assert!(
                x > 0.0,
                "{} produced non-positive sample {x}",
                named.label()
            );
        }
        assert_eq!(NamedDistribution::Unif100.label(), "Unif100");
        assert_eq!(NamedDistribution::PLab.label(), "PLab");
        assert_eq!(NamedDistribution::all().len(), 6);
    }

    #[test]
    fn named_distribution_serde_roundtrip() {
        let json = serde_json::to_string(&NamedDistribution::Power2).unwrap();
        let back: NamedDistribution = serde_json::from_str(&json).unwrap();
        assert_eq!(back, NamedDistribution::Power2);
    }
}
