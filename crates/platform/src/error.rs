//! Error type for platform construction.

use std::fmt;

/// Errors raised while building or validating a platform instance.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A bandwidth value was negative, NaN or infinite.
    InvalidBandwidth {
        /// Index of the offending node (0 = source).
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The instance has no receiver at all (n + m = 0).
    EmptyInstance,
    /// A parameter of a distribution or generator was out of its admissible range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::InvalidBandwidth { index, value } => {
                write!(f, "invalid bandwidth {value} for node C{index}")
            }
            PlatformError::EmptyInstance => write!(f, "instance has no receiver (n + m = 0)"),
            PlatformError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_bandwidth() {
        let e = PlatformError::InvalidBandwidth {
            index: 3,
            value: -1.0,
        };
        assert_eq!(e.to_string(), "invalid bandwidth -1 for node C3");
    }

    #[test]
    fn display_empty_instance() {
        assert_eq!(
            PlatformError::EmptyInstance.to_string(),
            "instance has no receiver (n + m = 0)"
        );
    }

    #[test]
    fn display_invalid_parameter() {
        let e = PlatformError::InvalidParameter {
            name: "p",
            reason: "must lie in [0, 1]".to_string(),
        };
        assert_eq!(e.to_string(), "invalid parameter `p`: must lie in [0, 1]");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(PlatformError::EmptyInstance);
        assert!(e.to_string().contains("no receiver"));
    }
}
