//! Random instance generation following the protocol of the paper's average-case study.
//!
//! For Figure 19, the paper generates instances as follows: every node is independently an
//! open node with probability `p` (guarded with probability `1 − p`), node bandwidths are
//! sampled i.i.d. from one of six distributions, and "the bandwidth of the source node is
//! chosen equal to the optimal cyclic throughput — what ensures that the source is not a
//! strong limiting bottleneck, and that it is also not sufficient by itself to feed all
//! nodes".
//!
//! Pinning `b_0` to the optimal cyclic throughput `T* = min(b_0, (b_0+O)/m, (b_0+O+G)/(n+m))`
//! is a fixed point: the largest consistent value is
//! `b_0 = min( O/(m−1) [if m ≥ 2], (O+G)/(n+m−1) [if n+m ≥ 2] )`.
//! When that fixed point is degenerate (for example when every sampled node happens to be
//! guarded, so `O = 0`), the generator falls back to the mean sampled bandwidth — in that
//! regime every scheme is a star from the source and the acyclic/cyclic ratio is 1 anyway.

use crate::distribution::BandwidthDistribution;
use crate::error::PlatformError;
use crate::instance::Instance;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Policy used to pick the source bandwidth of generated instances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourcePolicy {
    /// Pin `b_0` to the optimal cyclic throughput (the paper's Figure 19 protocol).
    CyclicOptimum,
    /// Sample `b_0` from the same distribution as the other nodes.
    Sampled,
    /// Use a fixed source bandwidth.
    Fixed(f64),
}

/// Configuration of the random instance generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of receivers (`n + m`).
    pub receivers: usize,
    /// Probability for each receiver to be an open node.
    pub open_probability: f64,
    /// Source bandwidth policy.
    pub source_policy: SourcePolicy,
}

impl GeneratorConfig {
    /// Creates a configuration with the paper's source policy (pinned to the cyclic optimum).
    ///
    /// # Errors
    ///
    /// Returns an error if `receivers == 0` or `open_probability ∉ [0, 1]`.
    pub fn new(receivers: usize, open_probability: f64) -> Result<Self, PlatformError> {
        if receivers == 0 {
            return Err(PlatformError::EmptyInstance);
        }
        if !(0.0..=1.0).contains(&open_probability) || !open_probability.is_finite() {
            return Err(PlatformError::InvalidParameter {
                name: "open_probability",
                reason: format!("must lie in [0, 1], got {open_probability}"),
            });
        }
        Ok(GeneratorConfig {
            receivers,
            open_probability,
            source_policy: SourcePolicy::CyclicOptimum,
        })
    }

    /// Overrides the source bandwidth policy.
    #[must_use]
    pub fn with_source_policy(mut self, policy: SourcePolicy) -> Self {
        self.source_policy = policy;
        self
    }
}

/// Random instance generator.
pub struct InstanceGenerator<D> {
    config: GeneratorConfig,
    distribution: D,
}

impl<D: BandwidthDistribution> InstanceGenerator<D> {
    /// Creates a generator from a configuration and a bandwidth distribution.
    #[must_use]
    pub fn new(config: GeneratorConfig, distribution: D) -> Self {
        InstanceGenerator {
            config,
            distribution,
        }
    }

    /// The generator's configuration.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates one random instance.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Instance {
        let mut open = Vec::new();
        let mut guarded = Vec::new();
        for _ in 0..self.config.receivers {
            let bandwidth = self.distribution.sample(rng);
            if rng.gen::<f64>() < self.config.open_probability {
                open.push(bandwidth);
            } else {
                guarded.push(bandwidth);
            }
        }
        let all: Vec<f64> = open.iter().chain(guarded.iter()).copied().collect();
        let b0 = match self.config.source_policy {
            SourcePolicy::Fixed(value) => value,
            SourcePolicy::Sampled => self.distribution.sample(rng),
            SourcePolicy::CyclicOptimum => {
                pinned_source_bandwidth(&open, &guarded).unwrap_or_else(|| mean(&all))
            }
        };
        Instance::new(b0, open, guarded).expect("generated bandwidths are valid")
    }

    /// Generates `count` independent random instances.
    pub fn generate_many<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<Instance> {
        (0..count).map(|_| self.generate(rng)).collect()
    }
}

/// Largest source bandwidth `b_0` such that `b_0` equals the optimal cyclic throughput of the
/// resulting instance (`T* = min(b_0, (b_0+O)/m, (b_0+O+G)/(n+m))`, Lemma 5.1).
///
/// Returns `None` when no constraint binds (a single receiver) or when the fixed point is
/// degenerate (non-positive, e.g. `O = 0` with at least two guarded nodes).
#[must_use]
pub fn pinned_source_bandwidth(open: &[f64], guarded: &[f64]) -> Option<f64> {
    let n = open.len();
    let m = guarded.len();
    let o: f64 = open.iter().sum();
    let g: f64 = guarded.iter().sum();
    let mut candidates = Vec::new();
    if m >= 2 {
        candidates.push(o / (m as f64 - 1.0));
    }
    if n + m >= 2 {
        candidates.push((o + g) / ((n + m) as f64 - 1.0));
    }
    let b0 = candidates.into_iter().fold(f64::INFINITY, f64::min);
    if !b0.is_finite() || b0 <= f64::EPSILON {
        None
    } else {
        Some(b0)
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        1.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{ConstantBandwidth, UniformBandwidth};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn config_validation() {
        assert!(GeneratorConfig::new(0, 0.5).is_err());
        assert!(GeneratorConfig::new(10, -0.1).is_err());
        assert!(GeneratorConfig::new(10, 1.5).is_err());
        assert!(GeneratorConfig::new(10, 0.5).is_ok());
    }

    #[test]
    fn generates_requested_number_of_receivers() {
        let config = GeneratorConfig::new(50, 0.7).unwrap();
        let gen = InstanceGenerator::new(config, UniformBandwidth::unif100());
        let mut r = rng();
        for _ in 0..20 {
            let inst = gen.generate(&mut r);
            assert_eq!(inst.num_receivers(), 50);
        }
    }

    #[test]
    fn open_fraction_close_to_probability() {
        let config = GeneratorConfig::new(200, 0.7).unwrap();
        let gen = InstanceGenerator::new(config, UniformBandwidth::unif100());
        let mut r = rng();
        let instances = gen.generate_many(100, &mut r);
        let total_open: usize = instances.iter().map(Instance::n).sum();
        let fraction = total_open as f64 / (200.0 * 100.0);
        assert!((fraction - 0.7).abs() < 0.03, "fraction = {fraction}");
    }

    #[test]
    fn all_open_when_probability_one() {
        let config = GeneratorConfig::new(30, 1.0).unwrap();
        let gen = InstanceGenerator::new(config, UniformBandwidth::unif100());
        let inst = gen.generate(&mut rng());
        assert_eq!(inst.n(), 30);
        assert_eq!(inst.m(), 0);
    }

    #[test]
    fn all_guarded_when_probability_zero() {
        let config = GeneratorConfig::new(30, 0.0).unwrap();
        let gen = InstanceGenerator::new(config, UniformBandwidth::unif100());
        let inst = gen.generate(&mut rng());
        assert_eq!(inst.n(), 0);
        assert_eq!(inst.m(), 30);
        // O = 0 with several guarded nodes: the fixed point is degenerate, so the fallback
        // (mean bandwidth) applies and the source bandwidth stays positive.
        assert!(inst.source_bandwidth() > 0.0);
    }

    #[test]
    fn pinned_source_equals_cyclic_optimum() {
        // Hand-checkable values: open = [6, 4], guarded = [2, 2, 1].
        let open = vec![6.0, 4.0];
        let guarded = vec![2.0, 2.0, 1.0];
        let b0 = pinned_source_bandwidth(&open, &guarded).unwrap();
        // O = 10, G = 5: candidates are 10/2 = 5 and 15/4 = 3.75 → b0 = 3.75.
        assert!((b0 - 3.75).abs() < 1e-12);
        // Check the fixed point: T* = min(b0, (b0+O)/m, (b0+O+G)/(n+m)) = b0.
        let t = (b0 + 10.0 + 5.0) / 5.0;
        assert!((t - b0).abs() < 1e-12);
        assert!((b0 + 10.0) / 3.0 >= b0);
    }

    #[test]
    fn pinned_source_no_guarded() {
        // m = 0: only the (O+G)/(n+m−1) constraint applies.
        let b0 = pinned_source_bandwidth(&[3.0, 3.0, 3.0], &[]).unwrap();
        assert!((b0 - 4.5).abs() < 1e-12);
    }

    #[test]
    fn pinned_source_degenerate_cases() {
        assert!(pinned_source_bandwidth(&[5.0], &[]).is_none());
        assert!(pinned_source_bandwidth(&[], &[1.0]).is_none());
        assert!(pinned_source_bandwidth(&[], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn fixed_source_policy() {
        let config = GeneratorConfig::new(5, 0.5)
            .unwrap()
            .with_source_policy(SourcePolicy::Fixed(7.25));
        let gen = InstanceGenerator::new(config, ConstantBandwidth::new(2.0).unwrap());
        let inst = gen.generate(&mut rng());
        assert_eq!(inst.source_bandwidth(), 7.25);
        assert!(inst.bandwidths()[1..].iter().all(|&b| b == 2.0));
    }

    #[test]
    fn sampled_source_policy() {
        let config = GeneratorConfig::new(5, 0.5)
            .unwrap()
            .with_source_policy(SourcePolicy::Sampled);
        let gen = InstanceGenerator::new(config, ConstantBandwidth::new(3.0).unwrap());
        let inst = gen.generate(&mut rng());
        assert_eq!(inst.source_bandwidth(), 3.0);
    }

    #[test]
    fn cyclic_optimum_policy_on_constant_bandwidths() {
        let config = GeneratorConfig::new(10, 0.5).unwrap();
        let gen = InstanceGenerator::new(config, ConstantBandwidth::new(1.0).unwrap());
        let mut r = rng();
        for _ in 0..50 {
            let inst = gen.generate(&mut r);
            let (n, m) = (inst.n(), inst.m());
            let expected = pinned_source_bandwidth(&vec![1.0; n], &vec![1.0; m]).unwrap_or(1.0);
            assert!((inst.source_bandwidth() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn generate_many_is_reproducible_with_same_seed() {
        let config = GeneratorConfig::new(20, 0.6).unwrap();
        let gen = InstanceGenerator::new(config, UniformBandwidth::unif100());
        let a = gen.generate_many(5, &mut StdRng::seed_from_u64(7));
        let b = gen.generate_many(5, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
