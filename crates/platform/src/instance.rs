//! Problem instances: a source, `n` open nodes and `m` guarded nodes with outgoing bandwidths.

use crate::error::PlatformError;
use crate::node::{Node, NodeClass, NodeId};
use serde::{Deserialize, Serialize};

/// A problem instance of the bounded multi-port broadcast problem.
///
/// Nodes are indexed as in the paper: `0` is the source `C0`, `1..=n` are the open nodes and
/// `n+1..=n+m` are the guarded nodes. Within each class, nodes are stored by non-increasing
/// outgoing bandwidth (`b_1 ≥ … ≥ b_n` and `b_{n+1} ≥ … ≥ b_{n+m}`); every constructor
/// enforces this normalisation, which all the algorithms of the paper assume
/// ("increasing orders", Lemma 4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Outgoing bandwidth of every node; index 0 is the source.
    bandwidths: Vec<f64>,
    /// Number of open nodes (excluding the source).
    n: usize,
    /// Number of guarded nodes.
    m: usize,
}

impl Instance {
    /// Builds an instance from the source bandwidth and the open / guarded bandwidth lists.
    ///
    /// The open and guarded lists are each sorted by non-increasing bandwidth. Bandwidths must
    /// be finite and non-negative, and at least one receiver must exist.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidBandwidth`] for a negative / non-finite bandwidth and
    /// [`PlatformError::EmptyInstance`] when both lists are empty.
    pub fn new(
        source_bandwidth: f64,
        open: Vec<f64>,
        guarded: Vec<f64>,
    ) -> Result<Self, PlatformError> {
        let mut open = open;
        let mut guarded = guarded;
        sort_desc(&mut open);
        sort_desc(&mut guarded);
        Self::new_presorted(source_bandwidth, open, guarded)
    }

    /// Builds an instance whose open and guarded lists are *already* sorted by non-increasing
    /// bandwidth. The sortedness is validated.
    ///
    /// # Errors
    ///
    /// Same as [`Instance::new`], plus [`PlatformError::InvalidParameter`] if a list is not
    /// sorted.
    pub fn new_presorted(
        source_bandwidth: f64,
        open: Vec<f64>,
        guarded: Vec<f64>,
    ) -> Result<Self, PlatformError> {
        if !is_sorted_desc(&open) || !is_sorted_desc(&guarded) {
            return Err(PlatformError::InvalidParameter {
                name: "bandwidths",
                reason: "open and guarded bandwidths must be sorted by non-increasing value"
                    .to_string(),
            });
        }
        let n = open.len();
        let m = guarded.len();
        if n + m == 0 {
            return Err(PlatformError::EmptyInstance);
        }
        let mut bandwidths = Vec::with_capacity(1 + n + m);
        bandwidths.push(source_bandwidth);
        bandwidths.extend_from_slice(&open);
        bandwidths.extend_from_slice(&guarded);
        for (index, &value) in bandwidths.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(PlatformError::InvalidBandwidth { index, value });
            }
        }
        Ok(Instance { bandwidths, n, m })
    }

    /// Builds an instance containing only open nodes (the `m = 0` case of the paper).
    ///
    /// # Errors
    ///
    /// Same as [`Instance::new`].
    pub fn open_only(source_bandwidth: f64, open: Vec<f64>) -> Result<Self, PlatformError> {
        Self::new(source_bandwidth, open, Vec::new())
    }

    /// A homogeneous instance: `n` open nodes of bandwidth `open_bw` and `m` guarded nodes of
    /// bandwidth `guarded_bw` (Section VI-A of the paper).
    ///
    /// # Errors
    ///
    /// Same as [`Instance::new`].
    pub fn homogeneous(
        source_bandwidth: f64,
        n: usize,
        open_bw: f64,
        m: usize,
        guarded_bw: f64,
    ) -> Result<Self, PlatformError> {
        Self::new(source_bandwidth, vec![open_bw; n], vec![guarded_bw; m])
    }

    /// Number of open nodes `n` (excluding the source).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of guarded nodes `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total number of nodes, source included (`n + m + 1`).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        1 + self.n + self.m
    }

    /// Number of receivers (`n + m`).
    #[must_use]
    pub fn num_receivers(&self) -> usize {
        self.n + self.m
    }

    /// Outgoing bandwidth of node `i` (0 = source).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bandwidth(&self, i: NodeId) -> f64 {
        self.bandwidths[i]
    }

    /// Outgoing bandwidth of the source `b_0`.
    #[must_use]
    pub fn source_bandwidth(&self) -> f64 {
        self.bandwidths[0]
    }

    /// All outgoing bandwidths, source first.
    #[must_use]
    pub fn bandwidths(&self) -> &[f64] {
        &self.bandwidths
    }

    /// Bandwidths of the open nodes (`b_1, …, b_n`), sorted non-increasingly.
    #[must_use]
    pub fn open_bandwidths(&self) -> &[f64] {
        &self.bandwidths[1..=self.n]
    }

    /// Bandwidths of the guarded nodes (`b_{n+1}, …, b_{n+m}`), sorted non-increasingly.
    #[must_use]
    pub fn guarded_bandwidths(&self) -> &[f64] {
        &self.bandwidths[self.n + 1..]
    }

    /// Class of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn class(&self, i: NodeId) -> NodeClass {
        assert!(i < self.num_nodes(), "node index {i} out of range");
        if i == 0 {
            NodeClass::Source
        } else if i <= self.n {
            NodeClass::Open
        } else {
            NodeClass::Guarded
        }
    }

    /// Whether node `i` is guarded.
    #[must_use]
    pub fn is_guarded(&self, i: NodeId) -> bool {
        self.class(i) == NodeClass::Guarded
    }

    /// Whether node `i` is the source or an open node ("open bandwidth" in the paper).
    #[must_use]
    pub fn is_open_like(&self, i: NodeId) -> bool {
        self.class(i).is_open_like()
    }

    /// Whether the pair `(i, j)` may carry a direct transfer (firewall constraint).
    #[must_use]
    pub fn can_send(&self, i: NodeId, j: NodeId) -> bool {
        self.class(i).can_send_to(self.class(j))
    }

    /// Full description of node `i`.
    #[must_use]
    pub fn node(&self, i: NodeId) -> Node {
        Node::new(i, self.class(i), self.bandwidth(i))
    }

    /// Iterator over all nodes, source first.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        (0..self.num_nodes()).map(move |i| self.node(i))
    }

    /// Iterator over receiver indices (`1..=n+m`).
    pub fn receivers(&self) -> impl Iterator<Item = NodeId> {
        1..self.num_nodes()
    }

    /// Iterator over open node indices (`1..=n`).
    pub fn open_indices(&self) -> impl Iterator<Item = NodeId> {
        1..=self.n
    }

    /// Iterator over guarded node indices (`n+1..=n+m`).
    pub fn guarded_indices(&self) -> impl Iterator<Item = NodeId> {
        self.n + 1..self.num_nodes()
    }

    /// Sum `O = Σ_{i=1}^{n} b_i` of the open-node bandwidths (source excluded).
    #[must_use]
    pub fn open_sum(&self) -> f64 {
        self.open_bandwidths().iter().sum()
    }

    /// Sum `G = Σ_{i=n+1}^{n+m} b_i` of the guarded-node bandwidths.
    #[must_use]
    pub fn guarded_sum(&self) -> f64 {
        self.guarded_bandwidths().iter().sum()
    }

    /// Total outgoing bandwidth of the platform, source included.
    #[must_use]
    pub fn total_bandwidth(&self) -> f64 {
        self.bandwidths.iter().sum()
    }

    /// Prefix sum `S_k = Σ_{i=0}^{k} b_i` used by the open-only analysis (Section III-B).
    ///
    /// Only meaningful for instances without guarded nodes, but defined for any `k` less than
    /// the number of nodes.
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ n + m + 1`.
    #[must_use]
    pub fn prefix_sum(&self, k: usize) -> f64 {
        assert!(k < self.num_nodes(), "prefix index {k} out of range");
        self.bandwidths[..=k].iter().sum()
    }

    /// Returns a copy of the instance with the source bandwidth replaced by `b0`.
    ///
    /// This is used by the random generator of the paper's average-case study, which pins the
    /// source bandwidth to the optimal cyclic throughput.
    #[must_use]
    pub fn with_source_bandwidth(&self, b0: f64) -> Instance {
        let mut clone = self.clone();
        clone.bandwidths[0] = b0;
        clone
    }

    /// Returns a copy of the instance where every guarded bandwidth is scaled by `factor`.
    ///
    /// Used when tightening instances (Lemma 11.1 reduces any instance to a *tight* one by
    /// shrinking guarded bandwidths).
    #[must_use]
    pub fn with_scaled_guarded(&self, factor: f64) -> Instance {
        let mut clone = self.clone();
        for i in clone.n + 1..clone.num_nodes() {
            clone.bandwidths[i] *= factor;
        }
        clone
    }

    /// Whether the instance contains at least one guarded node.
    #[must_use]
    pub fn has_guarded(&self) -> bool {
        self.m > 0
    }

    /// The `k`-th open node's index (1-based within the open class): `k ∈ 1..=n` maps to `k`.
    #[must_use]
    pub fn open_id(&self, k: usize) -> NodeId {
        debug_assert!(k >= 1 && k <= self.n);
        k
    }

    /// The `k`-th guarded node's index (1-based within the guarded class): `k ∈ 1..=m` maps to
    /// `n + k`.
    #[must_use]
    pub fn guarded_id(&self, k: usize) -> NodeId {
        debug_assert!(k >= 1 && k <= self.m);
        self.n + k
    }
}

fn sort_desc(values: &mut [f64]) {
    values.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
}

fn is_sorted_desc(values: &[f64]) -> bool {
    values.windows(2).all(|w| w[0] >= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        // The Figure 1 instance of the paper: b = [6, 5, 5, 4, 1, 1], n = 2, m = 3.
        Instance::new(6.0, vec![5.0, 5.0], vec![4.0, 1.0, 1.0]).unwrap()
    }

    #[test]
    fn construction_sorts_each_class() {
        let inst = Instance::new(3.0, vec![1.0, 5.0, 2.0], vec![0.5, 4.0]).unwrap();
        assert_eq!(inst.open_bandwidths(), &[5.0, 2.0, 1.0]);
        assert_eq!(inst.guarded_bandwidths(), &[4.0, 0.5]);
        assert_eq!(inst.source_bandwidth(), 3.0);
    }

    #[test]
    fn presorted_rejects_unsorted() {
        let err = Instance::new_presorted(3.0, vec![1.0, 5.0], vec![]).unwrap_err();
        assert!(matches!(err, PlatformError::InvalidParameter { .. }));
    }

    #[test]
    fn rejects_negative_bandwidth() {
        let err = Instance::new(3.0, vec![-1.0], vec![]).unwrap_err();
        assert!(matches!(err, PlatformError::InvalidBandwidth { .. }));
        let err = Instance::new(f64::NAN, vec![1.0], vec![]).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::InvalidBandwidth { index: 0, .. }
        ));
    }

    #[test]
    fn rejects_empty_instance() {
        let err = Instance::new(3.0, vec![], vec![]).unwrap_err();
        assert_eq!(err, PlatformError::EmptyInstance);
    }

    #[test]
    fn counts_and_sums() {
        let inst = sample();
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.m(), 3);
        assert_eq!(inst.num_nodes(), 6);
        assert_eq!(inst.num_receivers(), 5);
        assert!((inst.open_sum() - 10.0).abs() < 1e-12);
        assert!((inst.guarded_sum() - 6.0).abs() < 1e-12);
        assert!((inst.total_bandwidth() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn classes_follow_paper_indexing() {
        let inst = sample();
        assert_eq!(inst.class(0), NodeClass::Source);
        assert_eq!(inst.class(1), NodeClass::Open);
        assert_eq!(inst.class(2), NodeClass::Open);
        assert_eq!(inst.class(3), NodeClass::Guarded);
        assert_eq!(inst.class(5), NodeClass::Guarded);
        assert!(inst.is_guarded(4));
        assert!(inst.is_open_like(0));
        assert!(!inst.is_open_like(3));
    }

    #[test]
    fn firewall_pairs() {
        let inst = sample();
        assert!(inst.can_send(0, 3));
        assert!(inst.can_send(3, 1));
        assert!(!inst.can_send(3, 4));
        assert!(inst.can_send(1, 2));
    }

    #[test]
    fn open_and_guarded_ids() {
        let inst = sample();
        assert_eq!(inst.open_id(1), 1);
        assert_eq!(inst.open_id(2), 2);
        assert_eq!(inst.guarded_id(1), 3);
        assert_eq!(inst.guarded_id(3), 5);
        assert_eq!(inst.open_indices().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(inst.guarded_indices().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(inst.receivers().collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn prefix_sums() {
        let inst = Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap();
        assert!((inst.prefix_sum(0) - 6.0).abs() < 1e-12);
        assert!((inst.prefix_sum(2) - 15.0).abs() < 1e-12);
        assert!((inst.prefix_sum(3) - 18.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prefix_sum_out_of_range_panics() {
        let inst = sample();
        let _ = inst.prefix_sum(6);
    }

    #[test]
    fn with_source_bandwidth_replaces_b0_only() {
        let inst = sample().with_source_bandwidth(9.5);
        assert_eq!(inst.source_bandwidth(), 9.5);
        assert_eq!(inst.open_bandwidths(), sample().open_bandwidths());
        assert_eq!(inst.guarded_bandwidths(), sample().guarded_bandwidths());
    }

    #[test]
    fn with_scaled_guarded_scales_only_guarded() {
        let inst = sample().with_scaled_guarded(0.5);
        assert_eq!(inst.guarded_bandwidths(), &[2.0, 0.5, 0.5]);
        assert_eq!(inst.open_bandwidths(), &[5.0, 5.0]);
        assert_eq!(inst.source_bandwidth(), 6.0);
    }

    #[test]
    fn homogeneous_builder() {
        let inst = Instance::homogeneous(1.0, 3, 2.0, 2, 0.5).unwrap();
        assert_eq!(inst.open_bandwidths(), &[2.0, 2.0, 2.0]);
        assert_eq!(inst.guarded_bandwidths(), &[0.5, 0.5]);
    }

    #[test]
    fn nodes_iterator_is_consistent() {
        let inst = sample();
        let nodes: Vec<Node> = inst.nodes().collect();
        assert_eq!(nodes.len(), 6);
        assert_eq!(nodes[0].class, NodeClass::Source);
        assert_eq!(nodes[3].bandwidth, 4.0);
        assert_eq!(nodes[5].id, 5);
    }

    #[test]
    fn serde_roundtrip() {
        let inst = sample();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn open_only_has_no_guarded() {
        let inst = Instance::open_only(2.0, vec![1.0, 1.0]).unwrap();
        assert!(!inst.has_guarded());
        assert_eq!(inst.m(), 0);
        assert_eq!(inst.guarded_bandwidths(), &[] as &[f64]);
    }
}
