//! Platform model for broadcasting under the bounded multi-port (LastMile) model.
//!
//! An [`instance::Instance`] describes a source node `C0`, `n` *open* nodes and `m`
//! *guarded* nodes (behind NATs or firewalls), each with an outgoing bandwidth.
//! Incoming bandwidths are assumed unbounded, following the model of the paper
//! (Beaumont, Bonichon, Eyraud-Dubois, Uznański, Agrawal — "Broadcasting on Large Scale
//! Heterogeneous Platforms under the Bounded Multi-Port Model").
//!
//! The crate also provides:
//!
//! * [`distribution`] — the bandwidth distributions used in the paper's average-case study
//!   (uniform, Pareto, log-normal, and a synthetic PlanetLab-like empirical distribution),
//! * [`generator`] — random instance generation following the paper's protocol (each node is
//!   open with probability `p`, the source bandwidth is pinned to the optimal cyclic
//!   throughput),
//! * [`paper`] — the fixed instances appearing in the paper's figures (Figures 1, 6, 8, 18
//!   and the Theorem 6.3 family).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod error;
pub mod generator;
pub mod instance;
pub mod node;
pub mod paper;

pub use distribution::BandwidthDistribution;
pub use error::PlatformError;
pub use generator::InstanceGenerator;
pub use instance::Instance;
pub use node::{Node, NodeClass, NodeId};
