//! Node identity and classification.

use serde::{Deserialize, Serialize};

/// Identifier of a node inside an instance.
///
/// Index `0` always denotes the source `C0`; indices `1..=n` denote open nodes and
/// `n+1..=n+m` denote guarded nodes, mirroring the paper's notation.
pub type NodeId = usize;

/// Connectivity class of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeClass {
    /// The source node `C0` (always in the open Internet).
    Source,
    /// A node in the open Internet: it can exchange data with every other node.
    Open,
    /// A node behind a NAT or a firewall: it can only exchange data with open nodes
    /// (guarded → guarded transfers are forbidden).
    Guarded,
}

impl NodeClass {
    /// Whether a node of this class may *send* data directly to a node of class `other`.
    ///
    /// The only forbidden combination is guarded → guarded (the firewall constraint of the
    /// paper). The source behaves like an open node.
    #[must_use]
    pub fn can_send_to(self, other: NodeClass) -> bool {
        !(self == NodeClass::Guarded && other == NodeClass::Guarded)
    }

    /// Whether this class counts as "open bandwidth" (source or open node).
    #[must_use]
    pub fn is_open_like(self) -> bool {
        matches!(self, NodeClass::Source | NodeClass::Open)
    }

    /// Whether this class is guarded.
    #[must_use]
    pub fn is_guarded(self) -> bool {
        matches!(self, NodeClass::Guarded)
    }
}

/// A node of the platform: its identifier, class and outgoing bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Index of the node inside its instance.
    pub id: NodeId,
    /// Connectivity class.
    pub class: NodeClass,
    /// Outgoing bandwidth `b_i` (incoming bandwidth is unbounded in the LastMile model).
    pub bandwidth: f64,
}

impl Node {
    /// Creates a new node description.
    #[must_use]
    pub fn new(id: NodeId, class: NodeClass, bandwidth: f64) -> Self {
        Node {
            id,
            class,
            bandwidth,
        }
    }

    /// Lower bound `⌈b_i / T⌉` on the outdegree of this node in any scheme of throughput `T`
    /// that uses its full outgoing bandwidth.
    #[must_use]
    pub fn degree_lower_bound(&self, throughput: f64) -> usize {
        degree_lower_bound(self.bandwidth, throughput)
    }
}

/// Lower bound `⌈b / T⌉` on the outdegree of a node of bandwidth `b` in a scheme of
/// throughput `T` (Section II-D of the paper).
///
/// A tiny relative tolerance is applied before taking the ceiling so that, e.g.,
/// `b = 3 T` yields 3 and not 4 when the division carries floating-point noise.
#[must_use]
pub fn degree_lower_bound(bandwidth: f64, throughput: f64) -> usize {
    if throughput <= 0.0 || bandwidth <= 0.0 {
        return 0;
    }
    let ratio = bandwidth / throughput;
    let tol = 1e-9 * ratio.max(1.0);
    (ratio - tol).ceil().max(0.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firewall_constraint() {
        assert!(NodeClass::Source.can_send_to(NodeClass::Guarded));
        assert!(NodeClass::Open.can_send_to(NodeClass::Guarded));
        assert!(NodeClass::Guarded.can_send_to(NodeClass::Open));
        assert!(NodeClass::Guarded.can_send_to(NodeClass::Source));
        assert!(!NodeClass::Guarded.can_send_to(NodeClass::Guarded));
        assert!(NodeClass::Open.can_send_to(NodeClass::Open));
    }

    #[test]
    fn open_like_classification() {
        assert!(NodeClass::Source.is_open_like());
        assert!(NodeClass::Open.is_open_like());
        assert!(!NodeClass::Guarded.is_open_like());
        assert!(NodeClass::Guarded.is_guarded());
        assert!(!NodeClass::Open.is_guarded());
    }

    #[test]
    fn degree_bound_exact_multiple() {
        // b = 6, T = 2 → ⌈3⌉ = 3 even with floating point noise.
        assert_eq!(degree_lower_bound(6.0, 2.0), 3);
        assert_eq!(degree_lower_bound(6.0, 1.9999999999), 3);
        assert_eq!(degree_lower_bound(0.3, 0.1), 3);
    }

    #[test]
    fn degree_bound_fractional() {
        assert_eq!(degree_lower_bound(5.0, 2.0), 3);
        assert_eq!(degree_lower_bound(1.0, 2.0), 1);
        assert_eq!(degree_lower_bound(0.0, 2.0), 0);
        assert_eq!(degree_lower_bound(2.0, 0.0), 0);
    }

    #[test]
    fn node_degree_bound_matches_free_function() {
        let node = Node::new(4, NodeClass::Open, 5.0);
        assert_eq!(node.degree_lower_bound(2.0), degree_lower_bound(5.0, 2.0));
    }

    #[test]
    fn node_serde_roundtrip() {
        let node = Node::new(2, NodeClass::Guarded, 1.5);
        let json = serde_json::to_string(&node).unwrap();
        let back: Node = serde_json::from_str(&json).unwrap();
        assert_eq!(node, back);
    }
}
