//! The fixed instances appearing in the paper's figures.
//!
//! These instances are used throughout the test suite and by the experiment harness as
//! ground-truth fixtures:
//!
//! * [`figure1`] — the running example (n = 2 open, m = 3 guarded, optimal throughput 4.4),
//! * [`figure6`] — the family showing that optimal cyclic throughput with guarded nodes may
//!   require unbounded source degree,
//! * [`figure8_gadget`] — the 3-PARTITION reduction gadget of the NP-completeness proof,
//! * [`figure11`] — the open-only example used to illustrate the cyclic construction
//!   (b = [5, 5, 3, 2], T = 5),
//! * [`figure14`] — the larger open-only example of the cyclic induction
//!   (b = [5, 5, 4, 4, 4, 3], T = 5),
//! * [`figure18`] — the 5/7 worst-case instance,
//! * [`theorem63_instance`] — the `I(α, k)` family showing the ratio does not approach 1.

use crate::error::PlatformError;
use crate::instance::Instance;

/// The paper's Figure 1 instance: source bandwidth 6, open nodes `[5, 5]`, guarded nodes
/// `[4, 1, 1]`. Its optimal cyclic throughput is 4.4 and its optimal acyclic throughput is 4.
#[must_use]
pub fn figure1() -> Instance {
    Instance::new(6.0, vec![5.0, 5.0], vec![4.0, 1.0, 1.0]).expect("valid figure 1 instance")
}

/// The paper's Figure 6 family: `b_0 = 1`, one open node of bandwidth `m − 1` and `m` guarded
/// nodes of bandwidth `1/m`. Its optimal cyclic throughput is 1, but any optimal solution
/// requires the source to have outdegree `m` while `⌈b_0 / T*⌉ = 1`.
///
/// # Errors
///
/// Returns an error if `m < 2` (the construction needs at least two guarded nodes).
pub fn figure6(m: usize) -> Result<Instance, PlatformError> {
    if m < 2 {
        return Err(PlatformError::InvalidParameter {
            name: "m",
            reason: format!("the Figure 6 family needs m >= 2, got {m}"),
        });
    }
    Instance::new(1.0, vec![(m as f64) - 1.0], vec![1.0 / (m as f64); m])
}

/// The 3-PARTITION reduction gadget of Figure 8 (Theorem 3.1).
///
/// Given `3p` integers `a_i` with `Σ a_i = p·T` and `T/4 < a_i < T/2`, the gadget is an
/// open-only instance with a source of bandwidth `3pT`, `3p` intermediate nodes of bandwidths
/// `a_i` and `p` final nodes of bandwidth 0. Deciding whether throughput `T` is reachable with
/// the degree of every node `C_i` bounded by `⌈b_i/T⌉` is equivalent to the 3-PARTITION
/// instance.
///
/// Returns the instance together with the target throughput `T`.
///
/// # Errors
///
/// Returns an error if the `a_i` do not satisfy the 3-PARTITION preconditions.
pub fn figure8_gadget(items: &[u64], target: u64) -> Result<(Instance, f64), PlatformError> {
    if !items.len().is_multiple_of(3) || items.is_empty() {
        return Err(PlatformError::InvalidParameter {
            name: "items",
            reason: format!("need a positive multiple of 3 items, got {}", items.len()),
        });
    }
    let p = items.len() / 3;
    let sum: u64 = items.iter().sum();
    if sum != (p as u64) * target {
        return Err(PlatformError::InvalidParameter {
            name: "items",
            reason: format!("items must sum to p*T = {}, got {sum}", (p as u64) * target),
        });
    }
    if items.iter().any(|&a| 4 * a <= target || 2 * a >= target) {
        return Err(PlatformError::InvalidParameter {
            name: "items",
            reason: "every item must satisfy T/4 < a < T/2".to_string(),
        });
    }
    let t = target as f64;
    let source = 3.0 * (p as f64) * t;
    let mut open: Vec<f64> = items.iter().map(|&a| a as f64).collect();
    open.extend(std::iter::repeat_n(0.0, p));
    let instance = Instance::new(source, open, Vec::new())?;
    Ok((instance, t))
}

/// The open-only instance of Figure 11/12 used to illustrate the cyclic construction:
/// `b = [5, 5, 3, 2]`, target throughput 5 (the first index `i_0` with `S_{i_0−1} < i_0·T`
/// is 3 = n).
#[must_use]
pub fn figure11() -> Instance {
    Instance::open_only(5.0, vec![5.0, 3.0, 2.0]).expect("valid figure 11 instance")
}

/// The open-only instance of Figure 14/15/17 used to illustrate the cyclic induction:
/// `b = [5, 5, 4, 4, 4, 3]`, target throughput 5 (here `i_0 = 3 < n = 5`).
#[must_use]
pub fn figure14() -> Instance {
    Instance::open_only(5.0, vec![5.0, 4.0, 4.0, 4.0, 3.0]).expect("valid figure 14 instance")
}

/// The 5/7 worst-case instance of Figure 18: `b_0 = 1`, one open node of bandwidth `1 + 2ε`
/// and two guarded nodes of bandwidth `1/2 − ε`. For `ε = 1/14` the two candidate orderings
/// achieve the same acyclic throughput `5/7` while the cyclic optimum is 1.
///
/// # Errors
///
/// Returns an error unless `0 ≤ ε < 1/2`.
pub fn figure18(epsilon: f64) -> Result<Instance, PlatformError> {
    if !(0.0..0.5).contains(&epsilon) {
        return Err(PlatformError::InvalidParameter {
            name: "epsilon",
            reason: format!("need 0 <= epsilon < 1/2, got {epsilon}"),
        });
    }
    Instance::new(
        1.0,
        vec![1.0 + 2.0 * epsilon],
        vec![0.5 - epsilon, 0.5 - epsilon],
    )
}

/// The `ε` value for which the Figure 18 instance attains the tight 5/7 ratio.
#[must_use]
pub fn figure18_tight_epsilon() -> f64 {
    1.0 / 14.0
}

/// The `I(α, k)` family of Theorem 6.3: `b_0 = 1`, `n = k·q` open nodes of bandwidth `α = p/q`
/// and `m = k·p` guarded nodes of bandwidth `1/α`. Its cyclic optimum is 1 while its acyclic
/// optimum stays below `(1 + √41)/8 ≈ 0.925` when `α ≈ (√41 − 3)/8`.
///
/// `alpha` is given as the rational `p/q`.
///
/// # Errors
///
/// Returns an error unless `p < q`, `p ≥ 1` and `k ≥ 1`.
pub fn theorem63_instance(p: u32, q: u32, k: u32) -> Result<Instance, PlatformError> {
    if p == 0 || q == 0 || p >= q || k == 0 {
        return Err(PlatformError::InvalidParameter {
            name: "alpha",
            reason: format!("need 0 < p < q and k >= 1, got p={p}, q={q}, k={k}"),
        });
    }
    let alpha = f64::from(p) / f64::from(q);
    let n = (k * q) as usize;
    let m = (k * p) as usize;
    Instance::new(1.0, vec![alpha; n], vec![1.0 / alpha; m])
}

/// The irrational `α = (√41 − 3)/8 ≈ 0.4254` of Theorem 6.3, at which the acyclic/cyclic
/// ratio of `I(α, k)` approaches `(1 + √41)/8`.
#[must_use]
pub fn theorem63_alpha() -> f64 {
    (41.0_f64.sqrt() - 3.0) / 8.0
}

/// The limit ratio `(1 + √41)/8 ≈ 0.9254` of Theorem 6.3.
#[must_use]
pub fn theorem63_ratio() -> f64 {
    (1.0 + 41.0_f64.sqrt()) / 8.0
}

/// A convenient rational approximation `p/q = 17/40 = 0.425` of [`theorem63_alpha`], suitable
/// for building concrete `I(α, k)` instances.
#[must_use]
pub fn theorem63_rational_alpha() -> (u32, u32) {
    (17, 40)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeClass;

    #[test]
    fn figure1_matches_paper() {
        let inst = figure1();
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.m(), 3);
        assert_eq!(inst.bandwidths(), &[6.0, 5.0, 5.0, 4.0, 1.0, 1.0]);
        assert!((inst.open_sum() - 10.0).abs() < 1e-12);
        assert!((inst.guarded_sum() - 6.0).abs() < 1e-12);
        // Lemma 5.1 evaluates to min(6, 16/3, 22/5) = 4.4 on this instance.
        let bound = (inst.source_bandwidth() + inst.open_sum() + inst.guarded_sum())
            / inst.num_receivers() as f64;
        assert!((bound - 4.4).abs() < 1e-12);
    }

    #[test]
    fn figure6_family_shape() {
        let inst = figure6(5).unwrap();
        assert_eq!(inst.n(), 1);
        assert_eq!(inst.m(), 5);
        assert_eq!(inst.source_bandwidth(), 1.0);
        assert_eq!(inst.open_bandwidths(), &[4.0]);
        assert!(inst
            .guarded_bandwidths()
            .iter()
            .all(|&g| (g - 0.2).abs() < 1e-12));
        assert!(figure6(1).is_err());
    }

    #[test]
    fn figure6_cyclic_bound_is_one() {
        for m in 2..20 {
            let inst = figure6(m).unwrap();
            let n_m = inst.num_receivers() as f64;
            let bound = [
                inst.source_bandwidth(),
                (inst.source_bandwidth() + inst.open_sum()) / inst.m() as f64,
                (inst.source_bandwidth() + inst.open_sum() + inst.guarded_sum()) / n_m,
            ]
            .into_iter()
            .fold(f64::INFINITY, f64::min);
            assert!((bound - 1.0).abs() < 1e-12, "m = {m}, bound = {bound}");
        }
    }

    #[test]
    fn figure8_gadget_valid_three_partition() {
        // p = 2, T = 100, items in (25, 50) summing to 200.
        let items = [30, 33, 37, 26, 35, 39];
        let (inst, t) = figure8_gadget(&items, 100).unwrap();
        assert_eq!(t, 100.0);
        assert_eq!(inst.n(), 3 * 2 + 2);
        assert_eq!(inst.m(), 0);
        assert_eq!(inst.source_bandwidth(), 600.0);
        // Total bandwidth is exactly 4pT, so no bandwidth can be wasted.
        assert!((inst.total_bandwidth() - 800.0).abs() < 1e-12);
        // The two final nodes have zero bandwidth and sit last after sorting.
        assert_eq!(inst.bandwidth(7), 0.0);
        assert_eq!(inst.bandwidth(8), 0.0);
    }

    #[test]
    fn figure8_gadget_rejects_invalid_inputs() {
        assert!(figure8_gadget(&[30, 33], 100).is_err());
        assert!(figure8_gadget(&[30, 33, 36], 100).is_err());
        assert!(figure8_gadget(&[20, 40, 40], 100).is_err());
        assert!(figure8_gadget(&[25, 25, 50], 100).is_err());
    }

    #[test]
    fn figure11_and_figure14_shapes() {
        let f11 = figure11();
        assert_eq!(f11.bandwidths(), &[5.0, 5.0, 3.0, 2.0]);
        assert_eq!(f11.m(), 0);
        let f14 = figure14();
        assert_eq!(f14.bandwidths(), &[5.0, 5.0, 4.0, 4.0, 4.0, 3.0]);
        assert_eq!(f14.m(), 0);
    }

    #[test]
    fn figure18_instance() {
        let eps = figure18_tight_epsilon();
        let inst = figure18(eps).unwrap();
        assert_eq!(inst.n(), 1);
        assert_eq!(inst.m(), 2);
        assert!((inst.bandwidth(1) - (1.0 + 2.0 * eps)).abs() < 1e-12);
        assert!((inst.bandwidth(2) - (0.5 - eps)).abs() < 1e-12);
        // The instance is tight: b0 + O + G = (n+m)·T* with T* = 1.
        assert!((inst.total_bandwidth() - 3.0).abs() < 1e-12);
        assert!(figure18(0.6).is_err());
        assert!(figure18(-0.1).is_err());
    }

    #[test]
    fn theorem63_instance_shape() {
        let (p, q) = theorem63_rational_alpha();
        let inst = theorem63_instance(p, q, 1).unwrap();
        assert_eq!(inst.n(), 40);
        assert_eq!(inst.m(), 17);
        let alpha = f64::from(p) / f64::from(q);
        assert!(inst
            .open_bandwidths()
            .iter()
            .all(|&b| (b - alpha).abs() < 1e-12));
        assert!(inst
            .guarded_bandwidths()
            .iter()
            .all(|&b| (b - 1.0 / alpha).abs() < 1e-12));
        // Cyclic optimum of the family is 1 (Lemma 5.1 evaluates to exactly 1).
        let t = [
            inst.source_bandwidth(),
            (inst.source_bandwidth() + inst.open_sum()) / inst.m() as f64,
            (inst.source_bandwidth() + inst.open_sum() + inst.guarded_sum())
                / inst.num_receivers() as f64,
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);
        assert!((t - 1.0).abs() < 1e-9, "cyclic bound = {t}");
        assert!(theorem63_instance(0, 3, 1).is_err());
        assert!(theorem63_instance(3, 3, 1).is_err());
        assert!(theorem63_instance(1, 3, 0).is_err());
    }

    #[test]
    fn theorem63_constants() {
        let alpha = theorem63_alpha();
        assert!((alpha - 0.42539).abs() < 1e-4);
        let ratio = theorem63_ratio();
        assert!((ratio - 0.92539).abs() < 1e-4);
        // f_alpha(2) = g_alpha(3) at the optimum: (2α + 1)/2 = (3α + 1/α + 1)/5.
        let f = (2.0 * alpha + 1.0) / 2.0;
        let g = (3.0 * alpha + 1.0 / alpha + 1.0) / 5.0;
        assert!((f - g).abs() < 1e-9);
        assert!((f - ratio).abs() < 1e-9);
    }

    #[test]
    fn classes_are_as_expected() {
        let inst = figure1();
        assert_eq!(inst.class(0), NodeClass::Source);
        assert_eq!(inst.class(1), NodeClass::Open);
        assert_eq!(inst.class(3), NodeClass::Guarded);
    }
}
