//! Property tests on the platform layer: instance normalisation, generators and the
//! source-bandwidth pinning rule of the average-case study.

use bmp_platform::distribution::{
    BandwidthDistribution, LogNormalBandwidth, NamedDistribution, ParetoBandwidth, UniformBandwidth,
};
use bmp_platform::generator::{pinned_source_bandwidth, GeneratorConfig, InstanceGenerator};
use bmp_platform::{Instance, NodeClass};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn instances_are_normalised(
        b0 in 0.0_f64..100.0,
        open in proptest::collection::vec(0.0_f64..100.0, 0..12),
        guarded in proptest::collection::vec(0.0_f64..100.0, 0..12),
    ) {
        prop_assume!(!open.is_empty() || !guarded.is_empty());
        let inst = Instance::new(b0, open.clone(), guarded.clone()).unwrap();
        // Class sizes and totals are preserved.
        prop_assert_eq!(inst.n(), open.len());
        prop_assert_eq!(inst.m(), guarded.len());
        let total: f64 = b0 + open.iter().sum::<f64>() + guarded.iter().sum::<f64>();
        prop_assert!((inst.total_bandwidth() - total).abs() < 1e-9);
        // Within each class, bandwidths are sorted by non-increasing value.
        prop_assert!(inst.open_bandwidths().windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(inst.guarded_bandwidths().windows(2).all(|w| w[0] >= w[1]));
        // Node classes follow the paper's indexing.
        prop_assert_eq!(inst.class(0), NodeClass::Source);
        for i in inst.open_indices() {
            prop_assert_eq!(inst.class(i), NodeClass::Open);
        }
        for i in inst.guarded_indices() {
            prop_assert_eq!(inst.class(i), NodeClass::Guarded);
        }
    }

    #[test]
    fn pinned_source_is_a_fixed_point_of_lemma_5_1(
        open in proptest::collection::vec(0.1_f64..50.0, 0..20),
        guarded in proptest::collection::vec(0.1_f64..50.0, 0..20),
    ) {
        prop_assume!(open.len() + guarded.len() >= 2);
        if let Some(b0) = pinned_source_bandwidth(&open, &guarded) {
            let o: f64 = open.iter().sum();
            let g: f64 = guarded.iter().sum();
            let n = open.len();
            let m = guarded.len();
            let mut t_star = b0;
            if m > 0 {
                t_star = t_star.min((b0 + o) / m as f64);
            }
            t_star = t_star.min((b0 + o + g) / (n + m) as f64);
            prop_assert!((t_star - b0).abs() < 1e-7 * b0.max(1.0),
                "b0 = {} but T* = {}", b0, t_star);
        }
    }

    #[test]
    fn generated_instances_respect_the_configuration(
        receivers in 1usize..60,
        p in 0.0_f64..1.0,
        seed in 0u64..1000,
    ) {
        let config = GeneratorConfig::new(receivers, p).unwrap();
        let generator = InstanceGenerator::new(config, UniformBandwidth::unif100());
        let inst = generator.generate(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(inst.num_receivers(), receivers);
        prop_assert!(inst.source_bandwidth() > 0.0);
        prop_assert!(inst.bandwidths().iter().all(|&b| b.is_finite() && b >= 0.0));
    }

    #[test]
    fn samplers_produce_positive_finite_values(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samplers: Vec<Box<dyn BandwidthDistribution + Send + Sync>> = vec![
            Box::new(UniformBandwidth::unif100()),
            Box::new(ParetoBandwidth::power1()),
            Box::new(ParetoBandwidth::power2()),
            Box::new(LogNormalBandwidth::ln1()),
            Box::new(LogNormalBandwidth::ln2()),
            NamedDistribution::PLab.build(),
        ];
        for sampler in &samplers {
            for _ in 0..50 {
                let x = sampler.sample(&mut rng);
                prop_assert!(x.is_finite() && x > 0.0, "{} produced {}", sampler.name(), x);
            }
        }
    }
}

#[test]
fn named_distributions_cover_the_paper_labels() {
    let labels: Vec<&str> = NamedDistribution::all().iter().map(|d| d.label()).collect();
    for expected in ["Unif100", "Power1", "Power2", "LN1", "LN2", "PLab"] {
        assert!(
            labels.contains(&expected),
            "missing distribution {expected}"
        );
    }
}
