//! Admission control: which sessions run, in which wave, and which are turned away.
//!
//! Decisions are made on the coordinator in session-id order *before* any shard
//! thread exists, so the decision log is deterministic for a fixed config no matter
//! how the admitted sessions are later sharded. A session's load is the aggregate
//! bandwidth its platform would occupy (source plus every receiver); the policy caps
//! both the number of concurrent sessions and the total admitted load.

use serde::{Deserialize, Serialize};

/// Capacity policy of a fleet: per-wave session and load caps, and whether an
/// over-cap session is queued for a later wave or rejected outright.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Maximum sessions running concurrently (per wave). `None` = unlimited.
    pub max_sessions: Option<usize>,
    /// Maximum aggregate platform load (sum of session loads) per wave.
    /// `None` = unlimited.
    pub capacity: Option<f64>,
    /// `true` queues an over-cap session into the next wave with room;
    /// `false` rejects it.
    pub queue: bool,
}

impl Default for AdmissionPolicy {
    /// Admit everything into one wave.
    fn default() -> Self {
        AdmissionPolicy {
            max_sessions: None,
            capacity: None,
            queue: false,
        }
    }
}

/// Why a session was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The per-wave session count cap was reached (reject mode only).
    SessionCap,
    /// The session would push the wave over the load capacity (or can never fit:
    /// its own load alone exceeds the capacity).
    Capacity,
}

/// The verdict for one session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionVerdict {
    /// Runs in the given wave (wave 0 first; later waves start after the previous
    /// wave's sessions complete).
    Admitted {
        /// Index of the execution wave the session was scheduled into.
        wave: usize,
    },
    /// Turned away.
    Rejected {
        /// Which cap turned it away.
        reason: RejectReason,
    },
}

/// One line of the deterministic admission log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionDecision {
    /// Session id (its index in submission order).
    pub session: usize,
    /// Aggregate platform load the session requested.
    pub load: f64,
    /// The decision.
    pub verdict: AdmissionVerdict,
}

/// Running occupancy of one execution wave.
#[derive(Debug, Clone, Copy, Default)]
struct WaveLoad {
    sessions: usize,
    load: f64,
}

impl AdmissionPolicy {
    /// Whether a session of load `load` fits into a wave currently at `occupied`.
    fn fits(&self, occupied: WaveLoad, load: f64) -> bool {
        if let Some(cap) = self.max_sessions {
            if occupied.sessions >= cap {
                return false;
            }
        }
        if let Some(capacity) = self.capacity {
            if occupied.load + load > capacity + 1e-12 {
                return false;
            }
        }
        true
    }

    /// Decides every session in submission order. `loads[i]` is session `i`'s
    /// aggregate platform load; the returned log has one entry per session, in order.
    #[must_use]
    pub fn decide(&self, loads: &[f64]) -> Vec<AdmissionDecision> {
        let mut waves: Vec<WaveLoad> = vec![WaveLoad::default()];
        let mut decisions = Vec::with_capacity(loads.len());
        for (session, &load) in loads.iter().enumerate() {
            // A session whose load alone exceeds the capacity can never fit; queueing
            // it would search waves forever.
            let impossible = matches!(self.capacity, Some(capacity) if load > capacity + 1e-12);
            let verdict = if impossible {
                AdmissionVerdict::Rejected {
                    reason: RejectReason::Capacity,
                }
            } else if self.queue {
                let wave = match waves.iter().position(|&occupied| self.fits(occupied, load)) {
                    Some(wave) => wave,
                    None => {
                        waves.push(WaveLoad::default());
                        waves.len() - 1
                    }
                };
                waves[wave].sessions += 1;
                waves[wave].load += load;
                AdmissionVerdict::Admitted { wave }
            } else if self.fits(waves[0], load) {
                waves[0].sessions += 1;
                waves[0].load += load;
                AdmissionVerdict::Admitted { wave: 0 }
            } else {
                // Name the cap that turned it away: the session cap when it is full,
                // otherwise it must have been the load capacity.
                let reason = match self.max_sessions {
                    Some(cap) if waves[0].sessions >= cap => RejectReason::SessionCap,
                    _ => RejectReason::Capacity,
                };
                AdmissionVerdict::Rejected { reason }
            };
            decisions.push(AdmissionDecision {
                session,
                load,
                verdict,
            });
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_policy_admits_everything_into_wave_zero() {
        let decisions = AdmissionPolicy::default().decide(&[10.0, 20.0, 30.0]);
        assert_eq!(decisions.len(), 3);
        for (i, decision) in decisions.iter().enumerate() {
            assert_eq!(decision.session, i);
            assert_eq!(decision.verdict, AdmissionVerdict::Admitted { wave: 0 });
        }
    }

    #[test]
    fn session_cap_rejects_or_queues() {
        let reject = AdmissionPolicy {
            max_sessions: Some(2),
            capacity: None,
            queue: false,
        };
        let verdicts: Vec<_> = reject
            .decide(&[1.0, 1.0, 1.0, 1.0])
            .into_iter()
            .map(|d| d.verdict)
            .collect();
        assert_eq!(
            verdicts,
            vec![
                AdmissionVerdict::Admitted { wave: 0 },
                AdmissionVerdict::Admitted { wave: 0 },
                AdmissionVerdict::Rejected {
                    reason: RejectReason::SessionCap
                },
                AdmissionVerdict::Rejected {
                    reason: RejectReason::SessionCap
                },
            ]
        );
        let queue = AdmissionPolicy {
            queue: true,
            ..reject
        };
        let verdicts: Vec<_> = queue
            .decide(&[1.0, 1.0, 1.0, 1.0, 1.0])
            .into_iter()
            .map(|d| d.verdict)
            .collect();
        assert_eq!(
            verdicts,
            vec![
                AdmissionVerdict::Admitted { wave: 0 },
                AdmissionVerdict::Admitted { wave: 0 },
                AdmissionVerdict::Admitted { wave: 1 },
                AdmissionVerdict::Admitted { wave: 1 },
                AdmissionVerdict::Admitted { wave: 2 },
            ]
        );
    }

    #[test]
    fn capacity_cap_accounts_load_and_rejects_the_impossible() {
        let policy = AdmissionPolicy {
            max_sessions: None,
            capacity: Some(100.0),
            queue: true,
        };
        let verdicts: Vec<_> = policy
            .decide(&[60.0, 60.0, 150.0, 40.0])
            .into_iter()
            .map(|d| d.verdict)
            .collect();
        assert_eq!(
            verdicts,
            vec![
                AdmissionVerdict::Admitted { wave: 0 },
                AdmissionVerdict::Admitted { wave: 1 },
                // Load 150 alone exceeds the capacity: rejected even in queue mode.
                AdmissionVerdict::Rejected {
                    reason: RejectReason::Capacity
                },
                // Backfills the room left in wave 0.
                AdmissionVerdict::Admitted { wave: 0 },
            ]
        );
    }

    #[test]
    fn decisions_are_deterministic() {
        let policy = AdmissionPolicy {
            max_sessions: Some(3),
            capacity: Some(250.0),
            queue: true,
        };
        let loads = [90.0, 80.0, 70.0, 60.0, 50.0, 400.0, 40.0];
        assert_eq!(policy.decide(&loads), policy.decide(&loads));
    }
}
