//! The fleet runner: coordinator, crash-isolated shard threads, supervised
//! round-robin session stepping, and fleet-level checkpoint/resume.
//!
//! See the crate docs for the architecture diagram, the determinism contract and the
//! supervision state machine. The short version: everything a session computes is a
//! pure function of `(FleetConfig, session_id, attempt)`, admission and metric
//! assembly happen on the coordinator in session-id order, and shard threads only
//! decide *where* a session is stepped — so [`run_fleet`] returns byte-identical
//! reports across shard counts, even when sessions panic, wedge, retry, or the whole
//! fleet is halted and resumed ([`run_fleet_with`]).
//!
//! Crash isolation: every session build and every session round runs inside
//! `catch_unwind` on its shard. A panicking session is quarantined (and retried from
//! its last per-session checkpoint when the retry budget allows); its shard then
//! restarts the co-resident in-flight sessions from *their* last checkpoints — the
//! restart is bit-exact, so co-residency (a shard-layout artifact) never leaks into
//! any result.

use crate::admission::{AdmissionPolicy, AdmissionVerdict};
use crate::feed::{ChurnConfig, ChurnFeed};
use crate::metrics::{FleetMetrics, FleetReport, SessionStats};
use crate::mix_seed;
use crate::supervise::{
    Disposition, FaultProgress, FleetCheckpoint, PendingEntry, QuarantineReason, QuarantineRecord,
    SavedSessionState, SessionFaults, SupervisionConfig,
};
use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_flow::WorkerPanicGuard;
use bmp_platform::distribution::UniformBandwidth;
use bmp_platform::generator::GeneratorConfig;
use bmp_platform::{Instance, InstanceGenerator};
use bmp_sim::{AdaptiveRun, FaultPlan, Overlay, RepairController, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Complete description of one fleet run — [`run_fleet`] is a pure function of this.
///
/// Serializable so a [`FleetCheckpoint`] can embed it: a resumed fleet revalidates
/// that it is running under the configuration the checkpoint was taken with (only the
/// shard count — pure scheduling — may differ).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Sessions submitted to admission control.
    pub sessions: usize,
    /// Shard worker threads stepping the admitted sessions. Must be at least 1.
    /// Changes scheduling only, never results.
    pub shards: usize,
    /// Receivers per session platform (generated with open probability 0.7 and
    /// uniform `[10, 100]` bandwidths, like the experiment sweeps).
    pub receivers: usize,
    /// Chunks per session broadcast.
    pub chunks: usize,
    /// The fleet seed; session `i` derives its stream as `mix_seed(seed, i)`.
    pub seed: u64,
    /// Repair floor fraction of nominal, in `(0, 1]`.
    pub floor: f64,
    /// Flow-evaluation fan-out per controller (`1` sequential, `> 1` routed through
    /// [`bmp_flow::FlowPool::global`], `0` auto).
    pub flow_threads: usize,
    /// Pins the named solver to the front of every controller's repair chain.
    pub repair_algorithm: Option<String>,
    /// Admission policy (session cap, load capacity, queue vs reject).
    pub admission: AdmissionPolicy,
    /// The shared churn feed parameters.
    pub churn: ChurnConfig,
    /// Optional fault-injection plan installed into every session's controller
    /// (worker panics are armed once per fleet run, process-wide, behind a
    /// [`WorkerPanicGuard`] so no exit path leaks tokens).
    pub fault_plan: Option<FaultPlan>,
    /// Watchdog, retry and checkpoint-cadence parameters.
    pub supervision: SupervisionConfig,
    /// Serve-level chaos: injected session panics and overlay wedges (deterministic,
    /// shard-agnostic; empty in production).
    pub session_faults: SessionFaults,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            sessions: 8,
            shards: 1,
            receivers: 4,
            chunks: 60,
            seed: 0x5EED,
            floor: 0.9,
            flow_threads: 1,
            repair_algorithm: None,
            admission: AdmissionPolicy::default(),
            churn: ChurnConfig::default(),
            fault_plan: None,
            supervision: SupervisionConfig::default(),
            session_faults: SessionFaults::default(),
        }
    }
}

/// Seed stream tag of the retry backoff (decorrelates it from every other per-session
/// stream derived from the fleet seed).
const RETRY_STREAM: u64 = 0xB0FF;

/// The wave a quarantined-but-retryable session is re-admitted into: at least the
/// next wave, plus a seeded backoff of up to two further waves. Pure in
/// `(config.seed, session, attempt, wave)` — shard layout never enters.
fn retry_wave(config: &FleetConfig, session: usize, attempt: u32, wave: usize) -> usize {
    let backoff = mix_seed(
        config.seed ^ RETRY_STREAM,
        ((session as u64) << 8) | u64::from(attempt),
    ) % 3;
    wave + 1 + backoff as usize
}

/// Aggregate platform load a session occupies while admitted: its source bandwidth
/// plus every receiver's.
fn session_load(instance: &Instance) -> f64 {
    instance.source_bandwidth()
        + instance
            .receivers()
            .map(|node| instance.bandwidth(node))
            .sum::<f64>()
}

/// Deterministic panic-site tag from a caught payload: the panic message when it was
/// a string (every panic this workspace raises is), a fixed fallback otherwise.
fn panic_tag(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&'static str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// An admitted (or re-admitted) session scheduled onto a shard for one wave.
struct SessionTask {
    session: usize,
    seed: u64,
    attempt: u32,
    instance: Instance,
    state: Option<SavedSessionState>,
}

/// A session in flight on its shard, with its supervision bookkeeping.
struct LiveSession {
    session: usize,
    seed: u64,
    attempt: u32,
    instance: Instance,
    run: AdaptiveRun,
    controller: RepairController,
    /// Consecutive non-progressing rounds (watchdog input).
    stall: usize,
    /// Whether the watchdog's one forced repair attempt is already spent.
    forced: bool,
    /// The last per-session checkpoint — what a crash-isolated restart or a
    /// transient retry resumes from.
    saved: SavedSessionState,
}

/// Captures a [`SavedSessionState`] of the session as it stands right now.
fn snapshot(
    run: &AdaptiveRun,
    controller: &RepairController,
    stall: usize,
    forced: bool,
) -> SavedSessionState {
    SavedSessionState {
        run: run.checkpoint(Some(controller)),
        rounds: run.session().rounds_run(),
        fault_progress: controller
            .ctx()
            .injected_faults()
            .map(FaultProgress::capture),
        stall,
        forced,
    }
}

/// Builds (or resumes) one session. Pure in `(config, task)`: the same task produces
/// the same live state no matter which thread builds it. May panic (a solver defect,
/// or an injected fault reaching an unhardened path) — the shard catches it.
fn build_live(config: &FleetConfig, task: &SessionTask, feed: &ChurnFeed) -> LiveSession {
    let (run, mut controller, stall, forced, saved) = match &task.state {
        None => {
            let solution = AcyclicGuardedSolver::default().solve(&task.instance);
            let overlay = Overlay::from_scheme(&solution.scheme);
            let sim = SimConfig {
                num_chunks: config.chunks,
                seed: task.seed,
                ..SimConfig::default()
            }
            .scaled_to(solution.throughput, 2.0);
            let churn = feed.schedule(task.session, task.instance.num_nodes());
            let mut controller = RepairController::new(
                task.instance.clone(),
                solution.scheme,
                solution.throughput,
                config.floor,
            );
            controller.set_repair_algorithm(config.repair_algorithm.clone());
            if let Some(plan) = &config.fault_plan {
                // Per-controller fault script only: worker panics are process-global
                // and are armed once by the coordinator, not once per session.
                controller
                    .ctx_mut()
                    .set_injected_faults(plan.injected_faults());
            }
            let run = AdaptiveRun::new(overlay, sim, churn, solution.throughput);
            let saved = snapshot(&run, &controller, 0, false);
            (run, controller, 0, false, saved)
        }
        Some(saved) => {
            let (run, controller) = AdaptiveRun::resume(saved.run.clone());
            let mut controller = controller.expect("fleet sessions are controller-driven");
            if let Some(plan) = &config.fault_plan {
                if let Some(mut script) = plan.injected_faults() {
                    // Rebuild the fault script from the plan and fast-forward its
                    // cursor, so the remaining scheduled faults replay exactly as
                    // they would have without the restart.
                    if let Some(progress) = &saved.fault_progress {
                        progress.restore(&mut script);
                    }
                    controller.ctx_mut().set_injected_faults(Some(script));
                }
            }
            (run, controller, saved.stall, saved.forced, saved.clone())
        }
    };
    controller.set_parallelism(config.flow_threads);
    LiveSession {
        session: task.session,
        seed: task.seed,
        attempt: task.attempt,
        instance: task.instance.clone(),
        run,
        controller,
        stall,
        forced,
        saved,
    }
}

/// What one supervised round of one session produced.
enum StepVerdict {
    /// Still going.
    Running,
    /// Completed; here is its report row.
    Done(SessionStats),
    /// Reached the halt point; park this state into the fleet checkpoint. (Boxed:
    /// a saved state is an order of magnitude larger than the other verdicts.)
    Parked(Box<SavedSessionState>),
    /// Deterministically wedged or over budget: permanently quarantined at the given
    /// session-local round.
    Quarantined(QuarantineReason, usize),
}

/// Steps one session one supervised round: halt check, injected chaos, the data-plane
/// round itself, the no-progress watchdog, the round budget, and the checkpoint
/// cadence. May panic (injected session panics fire here) — the shard catches it.
fn step_once(
    config: &FleetConfig,
    live: &mut LiveSession,
    halt_after: Option<usize>,
    budget: usize,
    deadline: usize,
) -> StepVerdict {
    let rounds = live.run.session().rounds_run();
    if let Some(halt) = halt_after {
        if rounds >= halt {
            return StepVerdict::Parked(Box::new(snapshot(
                &live.run,
                &live.controller,
                live.stall,
                live.forced,
            )));
        }
    }
    for spec in &config.session_faults.panics {
        if spec.session == live.session
            && spec.round == rounds
            && (!spec.transient || live.attempt == 0)
        {
            panic!(
                "injected session panic (session {}, round {rounds})",
                live.session
            );
        }
    }
    for wedge in &config.session_faults.wedges {
        if wedge.session == live.session && wedge.round == rounds {
            let nodes = live.run.session().overlay().num_nodes();
            live.run.replace_overlay(Overlay::new(nodes, Vec::new()));
        }
    }
    if live.run.step(&mut live.controller) {
        let outcome = live.run.outcome(&live.controller);
        return StepVerdict::Done(SessionStats::from_outcome(
            live.session,
            live.seed,
            &outcome,
            live.controller.decisions(),
        ));
    }
    if live.run.last_round_progressed() {
        live.stall = 0;
        live.forced = false;
    } else {
        live.stall += 1;
        if live.stall >= deadline {
            if live.forced {
                // The forced repair bought nothing: a second full deadline passed
                // without progress. Give up deterministically.
                return StepVerdict::Quarantined(
                    QuarantineReason::Stuck {
                        rounds_without_progress: live.stall,
                    },
                    live.run.session().rounds_run(),
                );
            }
            live.forced = true;
            live.stall = 0;
            live.run.force_repair(&mut live.controller);
        }
    }
    let rounds_now = live.run.session().rounds_run();
    if rounds_now >= budget {
        return StepVerdict::Quarantined(
            QuarantineReason::Budget { rounds: rounds_now },
            rounds_now,
        );
    }
    if rounds_now.is_multiple_of(config.supervision.checkpoint_rounds) {
        live.saved = snapshot(&live.run, &live.controller, live.stall, live.forced);
    }
    StepVerdict::Running
}

/// The identity and last saved state of a session whose step (or build) panicked —
/// everything [`ShardOutcome::quarantine_panic`] needs besides the panic payload.
struct PanickedSession {
    session: usize,
    attempt: u32,
    round: usize,
    state: Option<SavedSessionState>,
}

/// What one shard hands back to the coordinator after its wave.
struct ShardOutcome {
    rows: Vec<SessionStats>,
    quarantined: Vec<QuarantineRecord>,
    retries: Vec<PendingEntry>,
    parked: Vec<PendingEntry>,
}

impl ShardOutcome {
    /// Records a panic quarantine and, when the retry budget allows, schedules the
    /// re-admission (resuming from `state`) into a seeded later wave.
    fn quarantine_panic(
        &mut self,
        config: &FleetConfig,
        wave: usize,
        victim: PanickedSession,
        payload: &(dyn std::any::Any + Send),
    ) {
        let disposition = if victim.attempt < config.supervision.max_retries {
            let retry = retry_wave(config, victim.session, victim.attempt, wave);
            self.retries.push(PendingEntry {
                session: victim.session,
                wave: retry,
                attempt: victim.attempt + 1,
                state: victim.state,
            });
            Disposition::Retried { wave: retry }
        } else {
            Disposition::Permanent
        };
        self.quarantined.push(QuarantineRecord {
            session: victim.session,
            wave,
            attempt: victim.attempt,
            round: victim.round,
            reason: QuarantineReason::Panic {
                tag: panic_tag(payload),
            },
            disposition,
        });
    }
}

/// Runs one shard's share of one wave: builds every assigned session (inside
/// `catch_unwind`), then steps them round-robin, one supervised round per session per
/// pass (each inside `catch_unwind`). A panicking session is quarantined and its
/// co-resident survivors are restarted from their last checkpoints — bit-exact, so
/// shard layout never shows in any result.
fn run_shard(
    config: &FleetConfig,
    wave: usize,
    tasks: Vec<SessionTask>,
    feed: &ChurnFeed,
    halt_after: Option<usize>,
) -> ShardOutcome {
    let budget = config.supervision.round_budget(config.chunks);
    let deadline = config.supervision.no_progress_deadline(config.chunks);
    let mut out = ShardOutcome {
        rows: Vec::new(),
        quarantined: Vec::new(),
        retries: Vec::new(),
        parked: Vec::new(),
    };
    let mut live: Vec<Option<LiveSession>> = Vec::with_capacity(tasks.len());
    for task in tasks {
        match catch_unwind(AssertUnwindSafe(|| build_live(config, &task, feed))) {
            Ok(session) => live.push(Some(session)),
            Err(payload) => {
                let round = task.state.as_ref().map_or(0, |state| state.rounds);
                out.quarantine_panic(
                    config,
                    wave,
                    PanickedSession {
                        session: task.session,
                        attempt: task.attempt,
                        round,
                        state: task.state,
                    },
                    payload.as_ref(),
                );
                live.push(None);
            }
        }
    }
    loop {
        let mut any_running = false;
        for index in 0..live.len() {
            let Some(session) = live[index].as_mut() else {
                continue;
            };
            any_running = true;
            let verdict = catch_unwind(AssertUnwindSafe(|| {
                step_once(config, session, halt_after, budget, deadline)
            }));
            match verdict {
                Ok(StepVerdict::Running) => {}
                Ok(StepVerdict::Done(row)) => {
                    out.rows.push(row);
                    live[index] = None;
                }
                Ok(StepVerdict::Parked(state)) => {
                    let parked = live[index].take().expect("session was live");
                    out.parked.push(PendingEntry {
                        session: parked.session,
                        wave,
                        attempt: parked.attempt,
                        state: Some(*state),
                    });
                }
                Ok(StepVerdict::Quarantined(reason, round)) => {
                    let wedged = live[index].take().expect("session was live");
                    out.quarantined.push(QuarantineRecord {
                        session: wedged.session,
                        wave,
                        attempt: wedged.attempt,
                        round,
                        reason,
                        disposition: Disposition::Permanent,
                    });
                }
                Err(payload) => {
                    // Crash isolation. The poisoned session is quarantined (and
                    // retried from its last checkpoint when the budget allows)...
                    let poisoned = live[index].take().expect("session was live");
                    out.quarantine_panic(
                        config,
                        wave,
                        PanickedSession {
                            session: poisoned.session,
                            attempt: poisoned.attempt,
                            round: poisoned.run.session().rounds_run(),
                            state: Some(poisoned.saved),
                        },
                        payload.as_ref(),
                    );
                    // ...and every co-resident in-flight session is restarted from
                    // its own last checkpoint instead of the shard dying. The resume
                    // is bit-exact (PR 6) and replays any injected chaos at the same
                    // session-local rounds, so which sessions shared the shard never
                    // affects their rows. The resume path itself is deserialization
                    // only — a panic there is a process bug and propagates.
                    for slot in live.iter_mut() {
                        if let Some(survivor) = slot.take() {
                            let task = SessionTask {
                                session: survivor.session,
                                seed: survivor.seed,
                                attempt: survivor.attempt,
                                instance: survivor.instance,
                                state: Some(survivor.saved),
                            };
                            *slot = Some(build_live(config, &task, feed));
                        }
                    }
                }
            }
        }
        if !any_running {
            break;
        }
    }
    out
}

/// Options of [`run_fleet_with`]: resume source, halt point, and checkpoint sink.
/// None of these affect any session's results — they decide only when the fleet
/// stops and what it persists.
#[derive(Default)]
pub struct FleetOptions<'a> {
    /// Resume from this checkpoint instead of starting fresh. The embedded config
    /// must match the one passed to [`run_fleet_with`] in everything but `shards`.
    pub resume: Option<FleetCheckpoint>,
    /// Park every still-running session once it reaches this many session-local
    /// rounds; the fleet then halts at the end of the wave and returns
    /// [`FleetRun::Halted`]. `None` runs to completion.
    pub halt_after: Option<usize>,
    /// Emit a [`FleetCheckpoint`] to `on_checkpoint` every this many completed waves
    /// (`0` = only the halt checkpoint, if any).
    pub checkpoint_every: usize,
    /// Receives each cadence checkpoint.
    pub on_checkpoint: Option<&'a mut dyn FnMut(&FleetCheckpoint)>,
}

/// How a supervised fleet run ended.
#[derive(Debug)]
pub enum FleetRun {
    /// Every admitted session completed or was permanently quarantined.
    Completed(FleetReport),
    /// The halt point was reached; resume later from this checkpoint.
    Halted(FleetCheckpoint),
}

impl FleetRun {
    /// Unwraps the completed report.
    ///
    /// # Panics
    ///
    /// Panics if the fleet halted instead of completing.
    #[must_use]
    pub fn into_report(self) -> FleetReport {
        match self {
            FleetRun::Completed(report) => report,
            FleetRun::Halted(_) => panic!("fleet halted before completion"),
        }
    }
}

/// Runs the whole fleet described by `config` and returns its deterministic report.
/// Equivalent to [`run_fleet_with`] under default [`FleetOptions`].
///
/// # Panics
///
/// Panics if `shards == 0`, `sessions == 0`, `receivers < 2`, `floor` is outside
/// `(0, 1]` (the controller's own precondition), or the supervision checkpoint
/// cadence is zero.
#[must_use]
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    run_fleet_with(config, FleetOptions::default()).into_report()
}

/// Runs (or resumes) the fleet described by `config` under `options`.
///
/// The determinism contract, extended to supervision: the final [`FleetReport`] of a
/// run — uninterrupted, or halted and resumed any number of times, at any shard
/// count — is byte-identical, because every supervision decision (quarantine round,
/// panic tag, retry wave, watchdog stall, checkpoint content) is a pure function of
/// `(config, session, attempt)`.
///
/// # Panics
///
/// As [`run_fleet`]; additionally if a resume checkpoint disagrees with `config` in
/// anything but the shard count, or its admission log does not match the one
/// recomputed from the config.
#[must_use]
pub fn run_fleet_with(config: &FleetConfig, options: FleetOptions<'_>) -> FleetRun {
    assert!(config.shards >= 1, "a fleet needs at least one shard");
    assert!(config.sessions >= 1, "a fleet needs at least one session");
    assert!(
        config.receivers >= 2,
        "a session platform needs at least two receivers"
    );
    assert!(
        config.supervision.checkpoint_rounds >= 1,
        "the per-session checkpoint cadence must be at least one round"
    );
    let FleetOptions {
        resume,
        halt_after,
        checkpoint_every,
        mut on_checkpoint,
    } = options;
    // Coordinator: derive seeds, generate platforms, decide admission — all in
    // session-id order, before any shard thread exists.
    let generator = InstanceGenerator::new(
        GeneratorConfig::new(config.receivers, 0.7).expect("valid generator config"),
        UniformBandwidth::unif100(),
    );
    let mut instances = Vec::with_capacity(config.sessions);
    let mut seeds = Vec::with_capacity(config.sessions);
    for session in 0..config.sessions {
        let seed = mix_seed(config.seed, session as u64);
        seeds.push(seed);
        instances.push(generator.generate(&mut StdRng::seed_from_u64(seed)));
    }
    let loads: Vec<f64> = instances.iter().map(session_load).collect();
    let admissions = config.admission.decide(&loads);

    let (mut wave, mut completed, mut quarantined, mut pending) = match resume {
        Some(checkpoint) => {
            let FleetCheckpoint {
                config: saved,
                admissions: saved_admissions,
                next_wave,
                completed,
                quarantined,
                pending,
            } = checkpoint;
            let mut reconciled = saved;
            reconciled.shards = config.shards;
            assert_eq!(
                &reconciled, config,
                "resume: the checkpoint was taken under a different fleet \
                 configuration (only the shard count may change)"
            );
            assert_eq!(
                saved_admissions, admissions,
                "resume: the checkpoint's admission log does not match the one \
                 recomputed from the configuration"
            );
            (next_wave, completed, quarantined, pending)
        }
        None => {
            let pending = admissions
                .iter()
                .filter_map(|decision| match decision.verdict {
                    AdmissionVerdict::Admitted { wave } => Some(PendingEntry {
                        session: decision.session,
                        wave,
                        attempt: 0,
                        state: None,
                    }),
                    AdmissionVerdict::Rejected { .. } => None,
                })
                .collect();
            (0, Vec::new(), Vec::new(), pending)
        }
    };

    // Worker panics are process-global: arm the whole run's budget once, behind a
    // drop-guard so no exit path — completion, halt, or an unwinding panic — leaks
    // unconsumed tokens into whatever runs next in this process. (The pooled
    // evaluator recomputes poisoned evaluations sequentially, so which evaluation a
    // panic lands on never changes any result.)
    let _panic_guard = config.fault_plan.as_ref().and_then(|plan| {
        (plan.worker_panics() > 0).then(|| WorkerPanicGuard::arm(plan.worker_panics()))
    });

    let feed = ChurnFeed::new(config.seed, config.churn);
    // Waves run to completion in order (a queued session starts only after the wave
    // occupying its capacity finished; retries land in strictly later waves); within
    // a wave, every shard steps its sessions round-robin on its own thread.
    let mut halted = false;
    let mut waves_since_checkpoint = 0usize;
    while !pending.is_empty() {
        let current = pending
            .iter()
            .map(|entry| entry.wave)
            .min()
            .expect("pending is non-empty");
        wave = wave.max(current);
        let (this_wave, later): (Vec<PendingEntry>, Vec<PendingEntry>) =
            pending.into_iter().partition(|entry| entry.wave <= wave);
        pending = later;
        let mut assignments: Vec<Vec<SessionTask>> =
            (0..config.shards).map(|_| Vec::new()).collect();
        for entry in this_wave {
            assignments[entry.session % config.shards].push(SessionTask {
                session: entry.session,
                seed: seeds[entry.session],
                attempt: entry.attempt,
                instance: instances[entry.session].clone(),
                state: entry.state,
            });
        }
        let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .into_iter()
                .map(|tasks| {
                    let feed = &feed;
                    scope.spawn(move || run_shard(config, wave, tasks, feed, halt_after))
                })
                .collect();
            handles
                .into_iter()
                // Session panics are contained inside the shard; a panic that still
                // reaches the join is a harness defect and is re-raised as-is.
                .map(|handle| {
                    handle
                        .join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        });
        for outcome in outcomes {
            completed.extend(outcome.rows);
            quarantined.extend(outcome.quarantined);
            pending.extend(outcome.retries);
            if !outcome.parked.is_empty() {
                halted = true;
                pending.extend(outcome.parked);
            }
        }
        // Ordered merges: shard layout determined only who computed what.
        completed.sort_by_key(|row| row.session);
        quarantined.sort_by_key(|record| (record.session, record.attempt));
        pending.sort_by_key(|entry| (entry.wave, entry.session, entry.attempt));
        if halted {
            break;
        }
        wave += 1;
        waves_since_checkpoint += 1;
        if checkpoint_every > 0 && waves_since_checkpoint >= checkpoint_every && !pending.is_empty()
        {
            waves_since_checkpoint = 0;
            if let Some(sink) = on_checkpoint.as_mut() {
                sink(&FleetCheckpoint {
                    config: config.clone(),
                    admissions: admissions.clone(),
                    next_wave: wave,
                    completed: completed.clone(),
                    quarantined: quarantined.clone(),
                    pending: pending.clone(),
                });
            }
        }
    }
    if halted {
        return FleetRun::Halted(FleetCheckpoint {
            config: config.clone(),
            admissions,
            next_wave: wave,
            completed,
            quarantined,
            pending,
        });
    }

    let rejected = admissions
        .iter()
        .filter(|decision| matches!(decision.verdict, AdmissionVerdict::Rejected { .. }))
        .count();
    let metrics = FleetMetrics::aggregate(&completed, rejected, &quarantined);
    FleetRun::Completed(FleetReport {
        sessions_submitted: config.sessions,
        seed: config.seed,
        receivers: config.receivers,
        chunks: config.chunks,
        floor: config.floor,
        admissions,
        sessions: completed,
        quarantined,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_fleet_runs_and_reports_in_session_order() {
        let config = FleetConfig {
            sessions: 3,
            shards: 2,
            chunks: 24,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config);
        assert_eq!(report.sessions_submitted, 3);
        assert_eq!(report.sessions.len(), 3);
        for (i, stats) in report.sessions.iter().enumerate() {
            assert_eq!(stats.session, i);
            assert!(stats.nominal > 0.0);
            assert!(stats.goodput > 0.0, "session {i} delivered nothing");
        }
        assert_eq!(report.metrics.sessions_run, 3);
        assert_eq!(report.metrics.sessions_rejected, 0);
        assert!(report.quarantined.is_empty());
        assert_eq!(report.metrics.sessions_quarantined, 0);
        assert_eq!(report.metrics.session_retries, 0);
    }

    #[test]
    fn rejected_sessions_are_logged_but_not_run() {
        let config = FleetConfig {
            sessions: 4,
            admission: AdmissionPolicy {
                max_sessions: Some(2),
                capacity: None,
                queue: false,
            },
            chunks: 24,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config);
        assert_eq!(report.admissions.len(), 4);
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.metrics.sessions_rejected, 2);
    }

    #[test]
    fn queued_sessions_run_in_later_waves() {
        let config = FleetConfig {
            sessions: 4,
            admission: AdmissionPolicy {
                max_sessions: Some(2),
                capacity: None,
                queue: true,
            },
            chunks: 24,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config);
        // Everyone runs: two in wave 0, two queued into wave 1.
        assert_eq!(report.sessions.len(), 4);
        assert_eq!(report.metrics.sessions_rejected, 0);
        let waves: Vec<usize> = report
            .admissions
            .iter()
            .map(|decision| match decision.verdict {
                AdmissionVerdict::Admitted { wave } => wave,
                AdmissionVerdict::Rejected { .. } => unreachable!("queue mode rejects nothing"),
            })
            .collect();
        assert_eq!(waves, vec![0, 0, 1, 1]);
    }

    #[test]
    fn retry_waves_are_seeded_and_strictly_later() {
        let config = FleetConfig::default();
        for session in 0..16 {
            for attempt in 0..3 {
                for wave in 0..4 {
                    let retry = retry_wave(&config, session, attempt, wave);
                    assert!(retry > wave, "a retry must land in a strictly later wave");
                    assert!(retry <= wave + 3, "backoff is bounded by three waves");
                    assert_eq!(retry, retry_wave(&config, session, attempt, wave));
                }
            }
        }
    }
}
