//! The fleet runner: coordinator, shard threads, round-robin session stepping.
//!
//! See the crate docs for the architecture diagram and the determinism contract. The
//! short version: everything a session computes is a pure function of
//! `(FleetConfig, session_id)`, admission and metric assembly happen on the
//! coordinator in session-id order, and shard threads only decide *where* a session
//! is stepped — so [`run_fleet`] returns byte-identical reports across shard counts.

use crate::admission::{AdmissionPolicy, AdmissionVerdict};
use crate::feed::{ChurnConfig, ChurnFeed};
use crate::metrics::{FleetMetrics, FleetReport, SessionStats};
use crate::mix_seed;
use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_platform::distribution::UniformBandwidth;
use bmp_platform::generator::GeneratorConfig;
use bmp_platform::{Instance, InstanceGenerator};
use bmp_sim::{AdaptiveRun, FaultPlan, Overlay, RepairController, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Complete description of one fleet run — [`run_fleet`] is a pure function of this.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Sessions submitted to admission control.
    pub sessions: usize,
    /// Shard worker threads stepping the admitted sessions. Must be at least 1.
    /// Changes scheduling only, never results.
    pub shards: usize,
    /// Receivers per session platform (generated with open probability 0.7 and
    /// uniform `[10, 100]` bandwidths, like the experiment sweeps).
    pub receivers: usize,
    /// Chunks per session broadcast.
    pub chunks: usize,
    /// The fleet seed; session `i` derives its stream as `mix_seed(seed, i)`.
    pub seed: u64,
    /// Repair floor fraction of nominal, in `(0, 1]`.
    pub floor: f64,
    /// Flow-evaluation fan-out per controller (`1` sequential, `> 1` routed through
    /// [`bmp_flow::FlowPool::global`], `0` auto).
    pub flow_threads: usize,
    /// Pins the named solver to the front of every controller's repair chain.
    pub repair_algorithm: Option<String>,
    /// Admission policy (session cap, load capacity, queue vs reject).
    pub admission: AdmissionPolicy,
    /// The shared churn feed parameters.
    pub churn: ChurnConfig,
    /// Optional fault-injection plan installed into every session's controller
    /// (worker panics are armed once per fleet run, process-wide).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            sessions: 8,
            shards: 1,
            receivers: 4,
            chunks: 60,
            seed: 0x5EED,
            floor: 0.9,
            flow_threads: 1,
            repair_algorithm: None,
            admission: AdmissionPolicy::default(),
            churn: ChurnConfig::default(),
            fault_plan: None,
        }
    }
}

/// Aggregate platform load a session occupies while admitted: its source bandwidth
/// plus every receiver's.
fn session_load(instance: &Instance) -> f64 {
    instance.source_bandwidth()
        + instance
            .receivers()
            .map(|node| instance.bandwidth(node))
            .sum::<f64>()
}

/// Runs one admitted session start-to-finish and returns its report row. Pure in
/// `(config, session, seed, instance)`: the same inputs produce the same row no
/// matter which thread runs it.
fn run_session(
    config: &FleetConfig,
    session: usize,
    seed: u64,
    instance: &Instance,
    feed: &ChurnFeed,
) -> SessionStats {
    let solution = AcyclicGuardedSolver::default().solve(instance);
    let overlay = Overlay::from_scheme(&solution.scheme);
    let sim = SimConfig {
        num_chunks: config.chunks,
        seed,
        ..SimConfig::default()
    }
    .scaled_to(solution.throughput, 2.0);
    let churn = feed.schedule(session, instance.num_nodes());
    let mut controller = RepairController::new(
        instance.clone(),
        solution.scheme,
        solution.throughput,
        config.floor,
    );
    controller.set_parallelism(config.flow_threads);
    controller.set_repair_algorithm(config.repair_algorithm.clone());
    if let Some(plan) = &config.fault_plan {
        // Per-controller fault script only: worker panics are process-global and are
        // armed once by the coordinator, not once per session.
        controller
            .ctx_mut()
            .set_injected_faults(plan.injected_faults());
    }
    let mut run = AdaptiveRun::new(overlay, sim, churn, solution.throughput);
    while !run.step(&mut controller) {}
    let outcome = run.outcome(&controller);
    SessionStats::from_outcome(session, seed, &outcome, controller.decisions())
}

/// An admitted session waiting to be stepped by its shard.
struct PendingSession {
    session: usize,
    seed: u64,
    wave: usize,
    instance: Instance,
}

/// Runs the whole fleet described by `config` and returns its deterministic report.
///
/// # Panics
///
/// Panics if `shards == 0`, `sessions == 0`, `receivers < 2`, or `floor` is outside
/// `(0, 1]` (the controller's own precondition).
#[must_use]
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    assert!(config.shards >= 1, "a fleet needs at least one shard");
    assert!(config.sessions >= 1, "a fleet needs at least one session");
    assert!(
        config.receivers >= 2,
        "a session platform needs at least two receivers"
    );
    // Coordinator: derive seeds, generate platforms, decide admission — all in
    // session-id order, before any shard thread exists.
    let generator = InstanceGenerator::new(
        GeneratorConfig::new(config.receivers, 0.7).expect("valid generator config"),
        UniformBandwidth::unif100(),
    );
    let mut instances = Vec::with_capacity(config.sessions);
    let mut seeds = Vec::with_capacity(config.sessions);
    for session in 0..config.sessions {
        let seed = mix_seed(config.seed, session as u64);
        seeds.push(seed);
        instances.push(generator.generate(&mut StdRng::seed_from_u64(seed)));
    }
    let loads: Vec<f64> = instances.iter().map(session_load).collect();
    let admissions = config.admission.decide(&loads);

    // Worker panics are process-global: arm the whole run's budget once. (The pooled
    // evaluator recomputes poisoned evaluations sequentially, so which evaluation a
    // panic lands on never changes any result.)
    if let Some(plan) = &config.fault_plan {
        if plan.worker_panics() > 0 {
            bmp_flow::arm_worker_panics(plan.worker_panics());
        }
    }

    // Partition the admitted sessions by shard (session id modulo shard count) while
    // remembering their execution wave.
    let mut shards: Vec<Vec<PendingSession>> = (0..config.shards).map(|_| Vec::new()).collect();
    let mut waves = 0usize;
    for (decision, instance) in admissions.iter().zip(instances) {
        if let AdmissionVerdict::Admitted { wave } = decision.verdict {
            waves = waves.max(wave + 1);
            shards[decision.session % config.shards].push(PendingSession {
                session: decision.session,
                seed: seeds[decision.session],
                wave,
                instance,
            });
        }
    }

    let feed = ChurnFeed::new(config.seed, config.churn);
    // Waves run to completion in order (a queued session starts only after the wave
    // occupying its capacity finished); within a wave, every shard steps its sessions
    // round-robin on its own thread.
    let mut rows: Vec<SessionStats> = Vec::new();
    for wave in 0..waves {
        let wave_rows: Vec<Vec<SessionStats>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .map(|pending| {
                    let feed = &feed;
                    scope.spawn(move || {
                        pending
                            .iter()
                            .filter(|p| p.wave == wave)
                            .map(|p| run_session(config, p.session, p.seed, &p.instance, feed))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("shard thread panicked"))
                .collect()
        });
        rows.extend(wave_rows.into_iter().flatten());
    }
    if let Some(plan) = &config.fault_plan {
        if plan.worker_panics() > 0 {
            // Unconsumed panic tokens must not leak into whatever runs next in this
            // process (another fleet, a test, a bench).
            bmp_flow::disarm_worker_panics();
        }
    }
    // Ordered merge: shard layout determined only who computed each row.
    rows.sort_by_key(|stats| stats.session);

    let rejected = admissions
        .iter()
        .filter(|decision| matches!(decision.verdict, AdmissionVerdict::Rejected { .. }))
        .count();
    let metrics = FleetMetrics::aggregate(&rows, rejected);
    FleetReport {
        sessions_submitted: config.sessions,
        seed: config.seed,
        receivers: config.receivers,
        chunks: config.chunks,
        floor: config.floor,
        admissions,
        sessions: rows,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_fleet_runs_and_reports_in_session_order() {
        let config = FleetConfig {
            sessions: 3,
            shards: 2,
            chunks: 24,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config);
        assert_eq!(report.sessions_submitted, 3);
        assert_eq!(report.sessions.len(), 3);
        for (i, stats) in report.sessions.iter().enumerate() {
            assert_eq!(stats.session, i);
            assert!(stats.nominal > 0.0);
            assert!(stats.goodput > 0.0, "session {i} delivered nothing");
        }
        assert_eq!(report.metrics.sessions_run, 3);
        assert_eq!(report.metrics.sessions_rejected, 0);
    }

    #[test]
    fn rejected_sessions_are_logged_but_not_run() {
        let config = FleetConfig {
            sessions: 4,
            admission: AdmissionPolicy {
                max_sessions: Some(2),
                capacity: None,
                queue: false,
            },
            chunks: 24,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config);
        assert_eq!(report.admissions.len(), 4);
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.metrics.sessions_rejected, 2);
    }

    #[test]
    fn queued_sessions_run_in_later_waves() {
        let config = FleetConfig {
            sessions: 4,
            admission: AdmissionPolicy {
                max_sessions: Some(2),
                capacity: None,
                queue: true,
            },
            chunks: 24,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config);
        // Everyone runs: two in wave 0, two queued into wave 1.
        assert_eq!(report.sessions.len(), 4);
        assert_eq!(report.metrics.sessions_rejected, 0);
        let waves: Vec<usize> = report
            .admissions
            .iter()
            .map(|decision| match decision.verdict {
                AdmissionVerdict::Admitted { wave } => wave,
                AdmissionVerdict::Rejected { .. } => unreachable!("queue mode rejects nothing"),
            })
            .collect();
        assert_eq!(waves, vec![0, 0, 1, 1]);
    }
}
