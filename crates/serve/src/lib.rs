//! `bmp-serve`: a sharded multi-session broadcast server.
//!
//! The paper's model is one source streaming to one heterogeneous platform; the fleet
//! layer runs *many* such broadcasts concurrently in a single process. Sessions are
//! admitted (or rejected/queued) by a capacity policy, hashed across a fixed set of
//! shard worker threads, stepped round-robin within each shard, and self-healed by a
//! per-session [`bmp_sim::RepairController`] driven off a per-session churn schedule
//! derived from one shared feed. All solver and repair flow work funnels through the
//! process-wide [`bmp_flow::FlowPool::global`] — repair never spawns per-session
//! threads, so the machine-wide flow-thread count stays bounded no matter how many
//! sessions are live.
//!
//! # Architecture
//!
//! ```text
//!                       ┌────────────────────────────────────┐
//!  FleetConfig ───────▶ │ coordinator                        │
//!                       │  · per-session seeds (splitmix64)  │
//!                       │  · platform generation             │
//!                       │  · admission decisions (ordered)   │
//!                       └──────┬─────────────────────────────┘
//!                              │ admitted sessions, wave by wave
//!               ┌──────────────┼──────────────┐    session i → shard i mod K
//!               ▼              ▼              ▼
//!         ┌──────────┐   ┌──────────┐   ┌──────────┐
//!         │ shard 0  │   │ shard 1  │   │ shard K-1│   round-robin stepping:
//!         │ sessions │   │ sessions │   │ sessions │   AdaptiveRun + RepairController
//!         └────┬─────┘   └────┬─────┘   └────┬─────┘   per session, one round at a
//!              │              │              │         time across the shard's list
//!              └──────────────┼──────────────┘
//!                             ▼
//!                  FlowPool::global()  (≤ 8 workers, fair FIFO tickets,
//!                                       submitter drains its own share)
//!                             │
//!                             ▼
//!               ┌─────────────────────────────┐
//!               │ ordered metric merge        │  session-id order, shard-agnostic:
//!               │ SessionStats → FleetReport  │  same seed ⇒ byte-identical report
//!               └─────────────────────────────┘
//! ```
//!
//! # Determinism contract
//!
//! A fleet run is a pure function of its [`FleetConfig`] — the shard count changes
//! only *where* sessions are stepped, never *what* they compute:
//!
//! * every session owns an RNG stream keyed by `splitmix64(fleet_seed, session_id)`,
//!   used for its platform, its simulator, and its churn schedule;
//! * admission is decided on the coordinator in session-id order, before any shard
//!   thread exists;
//! * sessions never interact: each has its own instance, overlay, controller and
//!   evaluation context, so stepping order across sessions is irrelevant;
//! * the shared flow pool is bit-for-bit equal to sequential evaluation (and a
//!   contained worker panic falls back to the sequential path), so pool scheduling
//!   races cannot perturb results;
//! * [`FleetReport`] is assembled in session-id order and records no shard ids, so
//!   the serialized report for seed S is byte-identical across 1, 2 or 4 shards.
//!
//! The determinism tests in `tests/fleet.rs` assert exactly that.
//!
//! # Supervision
//!
//! Fleets are long-lived and sessions can fail: a solver defect (or an injected
//! fault reaching an unhardened path) panics, or a session wedges and stops making
//! progress. Supervision contains both without giving up determinism. Every admitted
//! session moves through this state machine:
//!
//! ```text
//!                        ┌───────────────────────────────────────────────┐
//!                        │                 re-admitted (attempt + 1,     │
//!                        │                 seeded later wave)            │
//!                        ▼                                               │
//!  submitted ──▶ admitted(wave) ──▶ running ──▶ completed                │
//!      │                              │                                  │
//!      │ rejected                     │ panic ──▶ quarantined(Panic) ────┤ attempt < R
//!      ▼                              │                    │             │
//!   rejected                          │                    │ attempt = R │
//!   (logged,                          │                    ▼             │
//!    never run)                       │               permanent ◀────────┘
//!                                     │                    ▲
//!                                     │ no progress for    │ still no progress
//!                                     │ a full deadline ──▶│ after one forced
//!                                     │                    │ repair attempt
//!                                     │                    │   (Stuck)
//!                                     └─ round budget ────▶┘   (Budget)
//! ```
//!
//! * **Crash isolation.** Each shard builds and steps every session inside
//!   `catch_unwind`. A panicking session is quarantined with a deterministic
//!   panic-site tag (the panic message); the shard's co-resident sessions restart
//!   from their last per-session checkpoints — bit-exact, so co-residency never
//!   leaks into results — instead of the shard thread dying.
//! * **Watchdog.** [`SupervisionConfig`] derives a per-session round budget from the
//!   chunk count (overridable) and a no-progress deadline from
//!   `RoundStats::all_active_progressed`. At the first deadline the supervisor
//!   forces a repair attempt; if a second full deadline passes without progress the
//!   session is quarantined as `Stuck`. Exceeding the round budget quarantines it as
//!   `Budget`.
//! * **Bounded retry.** Panic quarantines are treated as transient for up to
//!   `max_retries` re-admissions: the session resumes from its last checkpoint in a
//!   seeded later wave (deterministic backoff of 1–3 waves). Stuck/Budget
//!   quarantines are deterministic verdicts and always permanent.
//!
//! # Fleet checkpoint / resume
//!
//! [`run_fleet_with`] can park every running session at a round boundary
//! (`halt_after`) and serialize a [`FleetCheckpoint`]: the config, the admission
//! log, completed rows, the quarantine log, and one [`bmp_sim::RunCheckpoint`] per
//! in-flight session (plus its fault-script cursor and watchdog counters). Resuming
//! revalidates the config (only the shard count may change) and the recomputed
//! admission log, then continues the wave loop. Because per-session resume is
//! bit-exact, the final [`FleetReport`] of a halted-and-resumed fleet is
//! byte-identical to the uninterrupted run, at any shard count — checkpoint
//! *documents* themselves may differ across layouts; only the final report is
//! canonical. Cadence checkpoints (`checkpoint_every` waves) stream to a caller
//! sink for crash-safe persistence.

pub mod admission;
pub mod feed;
pub mod fleet;
pub mod metrics;
pub mod supervise;

pub use admission::{AdmissionDecision, AdmissionPolicy, AdmissionVerdict, RejectReason};
pub use feed::{ChurnConfig, ChurnFeed};
pub use fleet::{run_fleet, run_fleet_with, FleetConfig, FleetOptions, FleetRun};
pub use metrics::{FleetMetrics, FleetReport, SessionStats};
pub use supervise::{
    Disposition, FleetCheckpoint, QuarantineReason, QuarantineRecord, SessionFaults, SessionPanic,
    SessionWedge, SupervisionConfig,
};

/// The splitmix64 finalizer, used to derive independent per-session RNG streams from
/// the fleet seed. Consecutive session ids land in statistically unrelated streams,
/// and the derivation depends only on `(seed, stream)` — never on shard layout.
#[must_use]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::mix_seed;

    #[test]
    fn mixed_seeds_are_distinct_and_deterministic() {
        let a = mix_seed(0x5EED, 0);
        let b = mix_seed(0x5EED, 1);
        let c = mix_seed(0x5EED + 1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix_seed(0x5EED, 0));
    }
}
