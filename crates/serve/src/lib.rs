//! `bmp-serve`: a sharded multi-session broadcast server.
//!
//! The paper's model is one source streaming to one heterogeneous platform; the fleet
//! layer runs *many* such broadcasts concurrently in a single process. Sessions are
//! admitted (or rejected/queued) by a capacity policy, hashed across a fixed set of
//! shard worker threads, stepped round-robin within each shard, and self-healed by a
//! per-session [`bmp_sim::RepairController`] driven off a per-session churn schedule
//! derived from one shared feed. All solver and repair flow work funnels through the
//! process-wide [`bmp_flow::FlowPool::global`] — repair never spawns per-session
//! threads, so the machine-wide flow-thread count stays bounded no matter how many
//! sessions are live.
//!
//! # Architecture
//!
//! ```text
//!                       ┌────────────────────────────────────┐
//!  FleetConfig ───────▶ │ coordinator                        │
//!                       │  · per-session seeds (splitmix64)  │
//!                       │  · platform generation             │
//!                       │  · admission decisions (ordered)   │
//!                       └──────┬─────────────────────────────┘
//!                              │ admitted sessions, wave by wave
//!               ┌──────────────┼──────────────┐    session i → shard i mod K
//!               ▼              ▼              ▼
//!         ┌──────────┐   ┌──────────┐   ┌──────────┐
//!         │ shard 0  │   │ shard 1  │   │ shard K-1│   round-robin stepping:
//!         │ sessions │   │ sessions │   │ sessions │   AdaptiveRun + RepairController
//!         └────┬─────┘   └────┬─────┘   └────┬─────┘   per session, one round at a
//!              │              │              │         time across the shard's list
//!              └──────────────┼──────────────┘
//!                             ▼
//!                  FlowPool::global()  (≤ 8 workers, fair FIFO tickets,
//!                                       submitter drains its own share)
//!                             │
//!                             ▼
//!               ┌─────────────────────────────┐
//!               │ ordered metric merge        │  session-id order, shard-agnostic:
//!               │ SessionStats → FleetReport  │  same seed ⇒ byte-identical report
//!               └─────────────────────────────┘
//! ```
//!
//! # Determinism contract
//!
//! A fleet run is a pure function of its [`FleetConfig`] — the shard count changes
//! only *where* sessions are stepped, never *what* they compute:
//!
//! * every session owns an RNG stream keyed by `splitmix64(fleet_seed, session_id)`,
//!   used for its platform, its simulator, and its churn schedule;
//! * admission is decided on the coordinator in session-id order, before any shard
//!   thread exists;
//! * sessions never interact: each has its own instance, overlay, controller and
//!   evaluation context, so stepping order across sessions is irrelevant;
//! * the shared flow pool is bit-for-bit equal to sequential evaluation (and a
//!   contained worker panic falls back to the sequential path), so pool scheduling
//!   races cannot perturb results;
//! * [`FleetReport`] is assembled in session-id order and records no shard ids, so
//!   the serialized report for seed S is byte-identical across 1, 2 or 4 shards.
//!
//! The determinism tests in `tests/fleet.rs` assert exactly that.

pub mod admission;
pub mod feed;
pub mod fleet;
pub mod metrics;

pub use admission::{AdmissionDecision, AdmissionPolicy, AdmissionVerdict, RejectReason};
pub use feed::{ChurnConfig, ChurnFeed};
pub use fleet::{run_fleet, FleetConfig};
pub use metrics::{FleetMetrics, FleetReport, SessionStats};

/// The splitmix64 finalizer, used to derive independent per-session RNG streams from
/// the fleet seed. Consecutive session ids land in statistically unrelated streams,
/// and the derivation depends only on `(seed, stream)` — never on shard layout.
#[must_use]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::mix_seed;

    #[test]
    fn mixed_seeds_are_distinct_and_deterministic() {
        let a = mix_seed(0x5EED, 0);
        let b = mix_seed(0x5EED, 1);
        let c = mix_seed(0x5EED + 1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, mix_seed(0x5EED, 0));
    }
}
