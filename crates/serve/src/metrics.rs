//! Fleet metrics: per-session rows, aggregate distributions, and the serialized
//! report the CLI and tests consume.
//!
//! The report is assembled in session-id order from values that depend only on each
//! session's own seed and config — it deliberately records *no* shard ids or counts,
//! so the serialized bytes for a fixed [`crate::FleetConfig`] are identical across
//! shard layouts (the byte-identity tests diff exactly this).

use crate::admission::AdmissionDecision;
use crate::supervise::{Disposition, QuarantineRecord};
use bmp_experiments::csvout::CsvTable;
use bmp_sim::SessionOutcome;
use serde::{Deserialize, Serialize};

/// Upper edges of the goodput-vs-nominal histogram bins (the last bin is open-ended:
/// repaired overlays can beat the *degraded* baseline and land above 1).
const GOODPUT_BIN_EDGES: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// One admitted session's outcome, in fleet-report row form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Session id (submission order).
    pub session: usize,
    /// The session's derived RNG stream seed.
    pub seed: u64,
    /// Nominal throughput of its initial overlay.
    pub nominal: f64,
    /// Delivered goodput over the surviving receivers.
    pub goodput: f64,
    /// `goodput / nominal` — the headline per-session health metric.
    pub goodput_vs_nominal: f64,
    /// Rounds the session simulated.
    pub rounds: usize,
    /// Membership changes that triggered a hot-swap.
    pub swaps: usize,
    /// Controller decisions that produced a repair plan.
    pub repairs: usize,
    /// Total solve attempts across all repair decisions (retries included).
    pub attempts: u32,
    /// Whether the session ended in the graceful-degradation state.
    pub degraded: bool,
    /// Floor-tracked residual throughput while degraded.
    pub degraded_floor: Option<f64>,
    /// Simulated time from the last hot-swap to recovery, when both happened.
    pub recovery_time: Option<f64>,
    /// Surviving receivers that completed the broadcast.
    pub completed: usize,
    /// Surviving receivers at the end of the run.
    pub survivors: usize,
}

impl SessionStats {
    /// Builds the row from a session's outcome and its controller's decision log.
    #[must_use]
    pub fn from_outcome(
        session: usize,
        seed: u64,
        outcome: &SessionOutcome,
        decisions: &[bmp_sim::ControllerDecision],
    ) -> Self {
        let completed = outcome
            .survivors
            .iter()
            .filter(|&&node| outcome.report.completion_time[node].is_some())
            .count();
        SessionStats {
            session,
            seed,
            nominal: outcome.nominal,
            goodput: outcome.goodput(),
            goodput_vs_nominal: outcome.goodput_vs_nominal(),
            rounds: outcome.report.rounds_run,
            swaps: outcome.swaps.iter().filter(|swap| swap.swapped).count(),
            repairs: decisions
                .iter()
                .filter(|decision| decision.repaired.is_some())
                .count(),
            attempts: decisions.iter().map(|decision| decision.attempts).sum(),
            degraded: outcome.degraded_floor.is_some(),
            degraded_floor: outcome.degraded_floor,
            recovery_time: outcome.recovery_time(),
            completed,
            survivors: outcome.survivors.len(),
        }
    }
}

/// Aggregates over the admitted sessions: distribution of per-session health plus
/// fleet-wide counters. Percentiles are over *simulated* time (never wall-clock, which
/// would be nondeterministic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Sessions that ran (admitted and stepped to completion).
    pub sessions_run: usize,
    /// Sessions rejected by admission control.
    pub sessions_rejected: usize,
    /// Sessions permanently quarantined by supervision (panicked past the retry
    /// budget, stuck, or over the round budget). Disjoint from `sessions_run`:
    /// `sessions_run + sessions_rejected + sessions_quarantined` equals the
    /// submitted count.
    pub sessions_quarantined: usize,
    /// Quarantine-and-retry re-admissions across the fleet (a session retried twice
    /// counts twice; retried sessions that then complete also count in
    /// `sessions_run`).
    pub session_retries: usize,
    /// Histogram of `goodput_vs_nominal` over 11 bins: `[0, 0.1), [0.1, 0.2), …,
    /// [0.9, 1.0), [1.0, ∞)`.
    pub goodput_histogram: Vec<usize>,
    /// Mean `goodput_vs_nominal` across run sessions (0 when none ran).
    pub mean_goodput_vs_nominal: f64,
    /// p50/p90/p99 of per-session repair recovery times (simulated time units), over
    /// the sessions that swapped and recovered; `None` when none did.
    pub recovery_p50: Option<f64>,
    pub recovery_p90: Option<f64>,
    pub recovery_p99: Option<f64>,
    /// Total hot-swaps across the fleet.
    pub total_swaps: usize,
    /// Total successful repairs across the fleet.
    pub total_repairs: usize,
    /// Total repair solve attempts (retries included).
    pub total_attempts: u64,
    /// Sessions that ended degraded.
    pub degraded_sessions: usize,
}

/// Nearest-rank percentile of an ascending-sorted slice (deterministic: no
/// interpolation, so the result is always an element of the input).
fn percentile(sorted: &[f64], fraction: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((fraction * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

impl FleetMetrics {
    /// Aggregates the per-session rows, the rejection count and the quarantine log
    /// into fleet metrics. Quarantined sessions are excluded from every
    /// goodput/recovery aggregate identically regardless of shard count — they have
    /// no row in `sessions` at all; only the two counters see them.
    #[must_use]
    pub fn aggregate(
        sessions: &[SessionStats],
        sessions_rejected: usize,
        quarantine: &[QuarantineRecord],
    ) -> Self {
        let mut histogram = vec![0usize; GOODPUT_BIN_EDGES.len() + 1];
        for stats in sessions {
            let bin = GOODPUT_BIN_EDGES
                .iter()
                .position(|&edge| stats.goodput_vs_nominal < edge)
                .unwrap_or(GOODPUT_BIN_EDGES.len());
            histogram[bin] += 1;
        }
        let mut recoveries: Vec<f64> = sessions
            .iter()
            .filter_map(|stats| stats.recovery_time)
            .collect();
        recoveries.sort_by(f64::total_cmp);
        let mean = if sessions.is_empty() {
            0.0
        } else {
            sessions
                .iter()
                .map(|stats| stats.goodput_vs_nominal)
                .sum::<f64>()
                / sessions.len() as f64
        };
        FleetMetrics {
            sessions_run: sessions.len(),
            sessions_rejected,
            sessions_quarantined: quarantine
                .iter()
                .filter(|record| record.disposition == Disposition::Permanent)
                .count(),
            session_retries: quarantine
                .iter()
                .filter(|record| matches!(record.disposition, Disposition::Retried { .. }))
                .count(),
            goodput_histogram: histogram,
            mean_goodput_vs_nominal: mean,
            recovery_p50: percentile(&recoveries, 0.50),
            recovery_p90: percentile(&recoveries, 0.90),
            recovery_p99: percentile(&recoveries, 0.99),
            total_swaps: sessions.iter().map(|stats| stats.swaps).sum(),
            total_repairs: sessions.iter().map(|stats| stats.repairs).sum(),
            total_attempts: sessions.iter().map(|stats| u64::from(stats.attempts)).sum(),
            degraded_sessions: sessions.iter().filter(|stats| stats.degraded).count(),
        }
    }
}

/// The complete fleet report: config echo, ordered admission log, per-session rows in
/// session-id order, and the aggregates. Shard-agnostic by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Sessions submitted (admitted + rejected).
    pub sessions_submitted: usize,
    /// The fleet seed.
    pub seed: u64,
    /// Receivers per session platform.
    pub receivers: usize,
    /// Chunks per session broadcast.
    pub chunks: usize,
    /// Repair floor fraction.
    pub floor: f64,
    /// The deterministic admission log, in submission order.
    pub admissions: Vec<AdmissionDecision>,
    /// Per-session outcomes, in session-id order (admitted sessions only; a
    /// permanently quarantined session has no row here).
    pub sessions: Vec<SessionStats>,
    /// The quarantine log, ordered by `(session, attempt)`: every panic, stuck and
    /// budget quarantine with its deterministic site tag and disposition.
    pub quarantined: Vec<QuarantineRecord>,
    /// Fleet-wide aggregates.
    pub metrics: FleetMetrics,
}

impl FleetReport {
    /// Serializes the report as pretty JSON (bit-exact f64 round-trip through the
    /// vendored layer; the determinism tests compare these strings byte for byte).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (the report contains only serializable types).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet report serializes")
    }

    /// Renders the per-session rows as CSV, one line per admitted session, the way
    /// experiment sweeps export their tables.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut table = CsvTable::new(&[
            "session",
            "seed",
            "nominal",
            "goodput",
            "goodput_vs_nominal",
            "rounds",
            "swaps",
            "repairs",
            "attempts",
            "degraded",
            "degraded_floor",
            "recovery_time",
            "completed",
            "survivors",
        ]);
        for stats in &self.sessions {
            table.push_row(vec![
                stats.session.to_string(),
                stats.seed.to_string(),
                format!("{}", stats.nominal),
                format!("{}", stats.goodput),
                format!("{}", stats.goodput_vs_nominal),
                stats.rounds.to_string(),
                stats.swaps.to_string(),
                stats.repairs.to_string(),
                stats.attempts.to_string(),
                (stats.degraded as u8).to_string(),
                stats
                    .degraded_floor
                    .map_or_else(String::new, |floor| format!("{floor}")),
                stats
                    .recovery_time
                    .map_or_else(String::new, |time| format!("{time}")),
                stats.completed.to_string(),
                stats.survivors.to_string(),
            ]);
        }
        table.to_csv_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(session: usize, ratio: f64, recovery: Option<f64>) -> SessionStats {
        SessionStats {
            session,
            seed: session as u64,
            nominal: 10.0,
            goodput: 10.0 * ratio,
            goodput_vs_nominal: ratio,
            rounds: 100,
            swaps: usize::from(recovery.is_some()),
            repairs: usize::from(recovery.is_some()),
            attempts: u32::from(recovery.is_some()),
            degraded: false,
            degraded_floor: None,
            recovery_time: recovery,
            completed: 4,
            survivors: 4,
        }
    }

    #[test]
    fn histogram_bins_and_percentiles() {
        let sessions = vec![
            stats(0, 0.05, Some(1.0)),
            stats(1, 0.55, Some(2.0)),
            stats(2, 0.95, Some(3.0)),
            stats(3, 1.25, Some(4.0)),
        ];
        let metrics = FleetMetrics::aggregate(&sessions, 2, &[]);
        assert_eq!(metrics.sessions_run, 4);
        assert_eq!(metrics.sessions_rejected, 2);
        assert_eq!(metrics.sessions_quarantined, 0);
        assert_eq!(metrics.session_retries, 0);
        assert_eq!(metrics.goodput_histogram.len(), 11);
        assert_eq!(metrics.goodput_histogram[0], 1); // 0.05
        assert_eq!(metrics.goodput_histogram[5], 1); // 0.55
        assert_eq!(metrics.goodput_histogram[9], 1); // 0.95
        assert_eq!(metrics.goodput_histogram[10], 1); // 1.25 in the open bin
        assert_eq!(metrics.recovery_p50, Some(2.0));
        assert_eq!(metrics.recovery_p90, Some(4.0));
        assert_eq!(metrics.recovery_p99, Some(4.0));
        assert_eq!(metrics.total_swaps, 4);
    }

    #[test]
    fn empty_fleet_aggregates_cleanly() {
        let metrics = FleetMetrics::aggregate(&[], 3, &[]);
        assert_eq!(metrics.sessions_run, 0);
        assert_eq!(metrics.sessions_rejected, 3);
        assert_eq!(metrics.mean_goodput_vs_nominal, 0.0);
        assert_eq!(metrics.recovery_p50, None);
    }

    #[test]
    fn quarantine_counters_split_by_disposition() {
        use crate::supervise::QuarantineReason;
        let panic = |attempt: u32, disposition: Disposition| QuarantineRecord {
            session: 3,
            wave: 0,
            attempt,
            round: 5,
            reason: QuarantineReason::Panic {
                tag: "injected".to_string(),
            },
            disposition,
        };
        let records = vec![
            panic(0, Disposition::Retried { wave: 2 }),
            panic(1, Disposition::Permanent),
            QuarantineRecord {
                session: 5,
                wave: 1,
                attempt: 0,
                round: 90,
                reason: QuarantineReason::Stuck {
                    rounds_without_progress: 64,
                },
                disposition: Disposition::Permanent,
            },
        ];
        let metrics = FleetMetrics::aggregate(&[], 0, &records);
        assert_eq!(metrics.sessions_quarantined, 2);
        assert_eq!(metrics.session_retries, 1);
    }

    #[test]
    fn csv_has_one_row_per_session() {
        let report = FleetReport {
            sessions_submitted: 2,
            seed: 7,
            receivers: 4,
            chunks: 32,
            floor: 0.9,
            admissions: Vec::new(),
            sessions: vec![stats(0, 0.9, None), stats(1, 1.0, Some(2.5))],
            quarantined: Vec::new(),
            metrics: FleetMetrics::aggregate(&[stats(0, 0.9, None)], 0, &[]),
        };
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("session,seed,nominal"));
        let json = report.to_json();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
