//! Fleet supervision: the types behind crash isolation, quarantine, the stuck-session
//! watchdog, bounded retry, and fleet-level checkpoint/resume.
//!
//! The supervision state machine (per admitted session):
//!
//! ```text
//!                       ┌────────────────────────────────────────────────┐
//!                       ▼                                                │ retry wave
//!   admitted ──▶ running (stepped round-robin by its shard)              │ (seeded
//!                   │        │           │            │                  │  backoff)
//!                   │ done   │ panic     │ watchdog   │ round budget     │
//!                   ▼        ▼           ▼            ▼                  │
//!               completed  quarantined(Panic)  quarantined(Stuck)  quarantined(Budget)
//!                            │   attempt < R                │            │
//!                            └──── disposition Retried ─────┼────────────┘
//!                                  attempt = R              ▼
//!                                  disposition Permanent (metrics exclude the session)
//! ```
//!
//! Only a [`QuarantineReason::Panic`] is treated as transient and re-admitted (from the
//! session's last per-session checkpoint, up to [`SupervisionConfig::max_retries`]
//! times); a stuck or over-budget session is deterministically wedged — re-running it
//! would reproduce the wedge — so those quarantines are immediately permanent.
//!
//! Everything here is a pure function of `(FleetConfig, session id, attempt)`: panic
//! tags, retry waves, stall counters and checkpoint cadence never depend on shard
//! layout or wall-clock, which is what keeps supervised fleet reports byte-identical
//! across shard counts.

use crate::admission::AdmissionDecision;
use crate::fleet::FleetConfig;
use crate::metrics::SessionStats;
use bmp_sim::RunCheckpoint;
use serde::{Deserialize, Serialize};

/// Watchdog, retry and checkpoint-cadence parameters of a supervised fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisionConfig {
    /// Hard per-session round budget: a session still unfinished after this many
    /// rounds is quarantined with [`QuarantineReason::Budget`]. `None` derives the
    /// budget from the nominal completion round count times a generous slack
    /// ([`SupervisionConfig::round_budget`]).
    pub max_rounds: Option<usize>,
    /// No-progress deadline: after this many *consecutive* rounds in which some
    /// active receiver gained nothing
    /// ([`bmp_sim::AdaptiveRun::last_round_progressed`]), the watchdog forces one
    /// repair attempt; a second full deadline without progress quarantines the
    /// session with [`QuarantineReason::Stuck`]. `None` derives it from the round
    /// budget ([`SupervisionConfig::no_progress_deadline`]).
    pub no_progress_rounds: Option<usize>,
    /// Rounds between in-memory per-session checkpoints (the state a crash-isolated
    /// shard restarts its surviving sessions from, and the state a transient retry
    /// resumes from). Must be at least 1.
    pub checkpoint_rounds: usize,
    /// Re-admissions granted to a transiently quarantined (panicked) session before
    /// its quarantine becomes permanent.
    pub max_retries: u32,
}

/// Slack multiplier of the derived round budget: nominal completion takes about
/// `chunks / 2` rounds (the fleet scales every session to ~2 chunks per round), so the
/// derived budget tolerates sessions running two orders of magnitude slower than
/// nominal before calling them runaway.
pub const ROUND_BUDGET_SLACK: usize = 64;

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            max_rounds: None,
            no_progress_rounds: None,
            checkpoint_rounds: 16,
            max_retries: 2,
        }
    }
}

impl SupervisionConfig {
    /// The effective per-session round budget for a `chunks`-chunk broadcast:
    /// [`SupervisionConfig::max_rounds`] when set, otherwise
    /// `ROUND_BUDGET_SLACK × (chunks / 2 + 16)` (nominal completion × slack, with a
    /// floor covering ramp-up rounds on tiny broadcasts).
    #[must_use]
    pub fn round_budget(&self, chunks: usize) -> usize {
        self.max_rounds
            .unwrap_or(ROUND_BUDGET_SLACK * (chunks / 2 + 16))
    }

    /// The effective no-progress deadline for a `chunks`-chunk broadcast:
    /// [`SupervisionConfig::no_progress_rounds`] when set, otherwise a sixteenth of
    /// the round budget with a floor of 64 — long enough that churn-degraded but
    /// live sessions never trip it, short enough that a truly wedged session is
    /// escalated well before its budget runs out.
    #[must_use]
    pub fn no_progress_deadline(&self, chunks: usize) -> usize {
        self.no_progress_rounds
            .unwrap_or_else(|| (self.round_budget(chunks) / 16).max(64))
    }
}

/// An injected session panic: the shard panics (inside its `catch_unwind`) the moment
/// the named session is about to step the named round. This is the serve-level chaos
/// hook the crash-isolation tests drive; it is keyed purely on
/// `(session, round, attempt)`, never on shard layout, so the blast radius replays
/// identically across shard counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionPanic {
    /// The session whose step panics.
    pub session: usize,
    /// The session-local round (its `rounds_run()`) at which the panic fires.
    pub round: usize,
    /// `true` fires only on the session's first admission (attempt 0), so a retried
    /// session replays past the site cleanly; `false` fires on every attempt and
    /// exhausts the retry budget.
    pub transient: bool,
}

/// An injected session wedge: the named session's overlay is silently replaced with an
/// edgeless one at the named round ([`bmp_sim::AdaptiveRun::replace_overlay`]). The
/// control plane is not told, so the session stops progressing without any membership
/// change — exactly the failure mode the stuck-session watchdog exists to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionWedge {
    /// The session to wedge.
    pub session: usize,
    /// The session-local round at which the wedge is installed.
    pub round: usize,
}

/// Deterministic serve-level chaos: which sessions panic and which are wedged.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionFaults {
    /// Injected step panics.
    pub panics: Vec<SessionPanic>,
    /// Injected overlay wedges.
    pub wedges: Vec<SessionWedge>,
}

impl SessionFaults {
    /// Whether no chaos is configured at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty() && self.wedges.is_empty()
    }
}

/// Why a session was quarantined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// The session's step (or build) panicked inside the shard's `catch_unwind`.
    Panic {
        /// Deterministic panic-site tag: the panic payload when it was a string
        /// (every panic this workspace raises is), `"opaque panic payload"` otherwise.
        tag: String,
    },
    /// The no-progress watchdog fired twice: a full deadline without progress forced
    /// a repair attempt, and a second full deadline passed still without progress.
    Stuck {
        /// Consecutive non-progressing rounds observed when the session was given up.
        rounds_without_progress: usize,
    },
    /// The session exceeded its hard round budget without completing.
    Budget {
        /// Rounds the session had run when the budget cut it off.
        rounds: usize,
    },
}

/// What happened to a session after its quarantine was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Disposition {
    /// The session is re-admitted into a later wave (seeded backoff), resuming from
    /// its last per-session checkpoint.
    Retried {
        /// The wave the retry was scheduled into.
        wave: usize,
    },
    /// The session is permanently out; fleet metrics exclude it.
    Permanent,
}

/// One line of the deterministic quarantine log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// The quarantined session.
    pub session: usize,
    /// The wave it was running in when quarantined.
    pub wave: usize,
    /// Which admission this was: 0 for the original, `k` for its `k`-th retry.
    pub attempt: u32,
    /// The session-local round at which the failure was observed.
    pub round: usize,
    /// Why it was quarantined.
    pub reason: QuarantineReason,
    /// Whether it gets another chance.
    pub disposition: Disposition,
}

/// The mutable state of one in-flight session's fault script (the cursor of
/// [`bmp_core::InjectedFaults`]), captured alongside its [`RunCheckpoint`] so a
/// restarted session replays the remaining scheduled faults identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultProgress {
    /// Times the solve site was reached.
    pub solve_reached: u64,
    /// Times the verify site was reached.
    pub verify_reached: u64,
    /// Times the probe site was reached.
    pub probe_reached: u64,
    /// Scheduled faults that have fired.
    pub fired: u64,
}

impl FaultProgress {
    /// Captures the cursor of an installed fault script.
    #[must_use]
    pub fn capture(faults: &bmp_core::InjectedFaults) -> Self {
        let (reached, fired) = faults.progress();
        FaultProgress {
            solve_reached: reached[0],
            verify_reached: reached[1],
            probe_reached: reached[2],
            fired,
        }
    }

    /// Restores this cursor onto a freshly built script from the same plan.
    pub fn restore(&self, faults: &mut bmp_core::InjectedFaults) {
        faults.restore_progress(
            [self.solve_reached, self.verify_reached, self.probe_reached],
            self.fired,
        );
    }
}

/// A per-session supervision checkpoint: the [`RunCheckpoint`] of PR 6 plus the
/// supervision-layer state that must survive a restart (fault-script cursor, watchdog
/// stall counter, whether the forced repair was already spent). Taken every
/// [`SupervisionConfig::checkpoint_rounds`] rounds; a crash-isolated shard restarts
/// its surviving sessions from these, and a transient retry resumes from the
/// panicking session's last one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedSessionState {
    /// The complete resumable run state (session, churn cursor, timeline, controller).
    pub run: RunCheckpoint,
    /// Session-local rounds run when the checkpoint was taken.
    pub rounds: usize,
    /// Fault-script cursor, when a fault plan is installed.
    pub fault_progress: Option<FaultProgress>,
    /// Consecutive non-progressing rounds observed so far.
    pub stall: usize,
    /// Whether the watchdog's one forced repair attempt was already spent.
    pub forced: bool,
}

/// One session the fleet still has to run (or finish): its identity, the wave it is
/// scheduled into, which attempt this is, and — for a session already in flight when
/// the checkpoint was taken, or a retry resuming after a panic — the saved state to
/// resume from (`None` means build it fresh from the fleet config).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingEntry {
    /// The session id.
    pub session: usize,
    /// The wave it runs in.
    pub wave: usize,
    /// Which admission this is (0 = original).
    pub attempt: u32,
    /// Saved state to resume from, when the session was already in flight.
    pub state: Option<SavedSessionState>,
}

/// A resumable snapshot of a whole fleet: the configuration it ran under, the
/// admission log (revalidated on resume — the coordinator recomputes it from the
/// config and the two must agree), the completed rows and quarantine log so far, and
/// every session still pending with its in-flight state. Self-contained: resuming
/// needs this document and nothing else, and the resumed fleet's final report is
/// byte-identical to the uninterrupted run's, at any shard count.
///
/// Checkpoint *documents* are not required to be shard-agnostic (the embedded config
/// echoes the shard count that wrote them); only the final [`crate::FleetReport`] is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCheckpoint {
    /// The fleet configuration the run was started with.
    pub config: FleetConfig,
    /// The coordinator's admission log.
    pub admissions: Vec<AdmissionDecision>,
    /// The next wave the coordinator would run.
    pub next_wave: usize,
    /// Rows of sessions that already completed, in session-id order.
    pub completed: Vec<SessionStats>,
    /// The quarantine log so far.
    pub quarantined: Vec<QuarantineRecord>,
    /// Sessions still to run, sorted by `(wave, session, attempt)`.
    pub pending: Vec<PendingEntry>,
}

impl FleetCheckpoint {
    /// Serializes the checkpoint as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet checkpoint serializes")
    }

    /// Parses a checkpoint back from [`FleetCheckpoint::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the parse or shape error when `text` is not a valid checkpoint.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_budgets_scale_with_chunks_and_respect_overrides() {
        let defaults = SupervisionConfig::default();
        assert_eq!(defaults.round_budget(60), ROUND_BUDGET_SLACK * 46);
        assert_eq!(defaults.round_budget(24), ROUND_BUDGET_SLACK * 28);
        assert!(defaults.no_progress_deadline(24) >= 64);
        assert!(defaults.no_progress_deadline(24) < defaults.round_budget(24));
        let pinned = SupervisionConfig {
            max_rounds: Some(5),
            no_progress_rounds: Some(3),
            ..SupervisionConfig::default()
        };
        assert_eq!(pinned.round_budget(60), 5);
        assert_eq!(pinned.no_progress_deadline(60), 3);
    }

    #[test]
    fn fault_progress_roundtrips_through_capture_and_restore() {
        let mut script = bmp_core::InjectedFaults::new(vec![0, 2], vec![1], vec![]);
        script.intercept(bmp_core::FaultSite::Solve);
        script.intercept(bmp_core::FaultSite::Verify);
        script.intercept(bmp_core::FaultSite::Verify);
        let progress = FaultProgress::capture(&script);
        let mut rebuilt = bmp_core::InjectedFaults::new(vec![0, 2], vec![1], vec![]);
        progress.restore(&mut rebuilt);
        assert_eq!(rebuilt, script);
        // The restored script continues exactly where the original would.
        assert_eq!(
            rebuilt.intercept(bmp_core::FaultSite::Solve),
            script.intercept(bmp_core::FaultSite::Solve)
        );
    }

    #[test]
    fn quarantine_types_roundtrip_through_json() {
        let record = QuarantineRecord {
            session: 7,
            wave: 1,
            attempt: 2,
            round: 33,
            reason: QuarantineReason::Panic {
                tag: "injected session panic (session 7, round 33)".into(),
            },
            disposition: Disposition::Retried { wave: 3 },
        };
        let json = serde_json::to_string(&record).unwrap();
        let back: QuarantineRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
        let stuck = QuarantineReason::Stuck {
            rounds_without_progress: 96,
        };
        let back: QuarantineReason =
            serde_json::from_str(&serde_json::to_string(&stuck).unwrap()).unwrap();
        assert_eq!(back, stuck);
    }
}
