//! Fleet-level acceptance tests: shard-count independence, admission determinism,
//! equivalence with independent single-session runs, and the 1000-session storm run.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_platform::distribution::UniformBandwidth;
use bmp_platform::generator::GeneratorConfig;
use bmp_platform::InstanceGenerator;
use bmp_serve::{
    mix_seed, run_fleet, AdmissionPolicy, AdmissionVerdict, ChurnConfig, ChurnFeed, FleetConfig,
    RejectReason, SessionFaults, SupervisionConfig,
};
use bmp_sim::{run_adaptive, FaultPlan, Overlay, RepairController, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_config() -> FleetConfig {
    FleetConfig {
        sessions: 24,
        shards: 1,
        receivers: 4,
        chunks: 24,
        seed: 0xF1EE7,
        floor: 0.9,
        flow_threads: 1,
        repair_algorithm: None,
        admission: AdmissionPolicy::default(),
        churn: ChurnConfig {
            start: 3.0,
            spacing: 2.0,
            waves: 2,
        },
        fault_plan: None,
        supervision: SupervisionConfig::default(),
        session_faults: SessionFaults::default(),
    }
}

#[test]
fn fleet_report_is_byte_identical_across_shard_counts() {
    let mut config = small_config();
    let reference = run_fleet(&config).to_json();
    for shards in [2usize, 4] {
        config.shards = shards;
        let report = run_fleet(&config).to_json();
        assert_eq!(
            reference, report,
            "shard count {shards} changed the fleet report"
        );
    }
}

#[test]
fn fleet_report_is_byte_identical_across_shard_counts_under_a_fault_storm() {
    let mut config = small_config();
    config.sessions = 8;
    config.fault_plan = Some(FaultPlan::storm(41));
    let reference = run_fleet(&config).to_json();
    config.shards = 4;
    assert_eq!(
        reference,
        run_fleet(&config).to_json(),
        "fault injection made the fleet report shard-dependent"
    );
}

#[test]
fn admission_rejections_are_deterministic_and_logged() {
    let mut config = small_config();
    config.sessions = 12;
    // unif100 receivers draw from [10, 100] and the source likewise: a 4-receiver
    // session load lands in [50, 500], so a 900 capacity admits roughly two to three
    // sessions and must reject the rest deterministically.
    config.admission = AdmissionPolicy {
        max_sessions: Some(5),
        capacity: Some(900.0),
        queue: false,
    };
    let first = run_fleet(&config);
    let second = run_fleet(&config);
    assert_eq!(first.admissions, second.admissions);
    assert_eq!(first.to_json(), second.to_json());
    let rejected: Vec<_> = first
        .admissions
        .iter()
        .filter(|decision| matches!(decision.verdict, AdmissionVerdict::Rejected { .. }))
        .collect();
    assert!(
        !rejected.is_empty(),
        "the capacity cap should have turned sessions away"
    );
    assert_eq!(first.metrics.sessions_rejected, rejected.len());
    assert_eq!(
        first.metrics.sessions_run + first.metrics.sessions_rejected,
        config.sessions
    );
    // Rejected sessions never produce rows.
    for decision in &rejected {
        assert!(first
            .sessions
            .iter()
            .all(|stats| stats.session != decision.session));
    }
    // Queue mode admits everyone eventually, with the same deterministic log shape.
    config.admission.queue = true;
    let queued = run_fleet(&config);
    let impossible = queued
        .admissions
        .iter()
        .filter(
            |decision| match (decision.verdict, config.admission.capacity) {
                (AdmissionVerdict::Rejected { reason }, Some(_)) => {
                    assert_eq!(reason, RejectReason::Capacity);
                    true
                }
                _ => false,
            },
        )
        .count();
    assert_eq!(
        queued.metrics.sessions_run + impossible,
        config.sessions,
        "queue mode must run every possible session"
    );
}

#[test]
fn fleet_sessions_match_independent_adaptive_runs() {
    let config = small_config();
    let report = run_fleet(&config);
    let generator = InstanceGenerator::new(
        GeneratorConfig::new(config.receivers, 0.7).unwrap(),
        UniformBandwidth::unif100(),
    );
    let feed = ChurnFeed::new(config.seed, config.churn);
    for stats in &report.sessions {
        // Rebuild the session exactly as a standalone run_adaptive caller would,
        // from nothing but the per-session seed.
        let seed = mix_seed(config.seed, stats.session as u64);
        assert_eq!(seed, stats.seed);
        let instance = generator.generate(&mut StdRng::seed_from_u64(seed));
        let solution = AcyclicGuardedSolver::default().solve(&instance);
        let overlay = Overlay::from_scheme(&solution.scheme);
        let sim = SimConfig {
            num_chunks: config.chunks,
            seed,
            ..SimConfig::default()
        }
        .scaled_to(solution.throughput, 2.0);
        let churn = feed.schedule(stats.session, instance.num_nodes());
        let mut controller =
            RepairController::new(instance, solution.scheme, solution.throughput, config.floor);
        let outcome = run_adaptive(overlay, sim, &churn, &mut controller, solution.throughput);
        assert_eq!(
            outcome.goodput().to_bits(),
            stats.goodput.to_bits(),
            "session {} diverged from its standalone run",
            stats.session
        );
        assert_eq!(outcome.nominal.to_bits(), stats.nominal.to_bits());
        assert_eq!(outcome.report.rounds_run, stats.rounds);
    }
}

#[test]
fn a_thousand_session_storm_fleet_is_deterministic_on_four_shards() {
    // The ISSUE acceptance run, sized for debug-mode CI: 1000 sessions on 4 shards
    // under a seeded churn storm, minimal per-session platforms so the fleet stays
    // within seconds. Determinism is asserted by re-running with a different shard
    // count and comparing the serialized reports byte for byte.
    let config = FleetConfig {
        sessions: 1000,
        shards: 4,
        receivers: 3,
        chunks: 12,
        seed: 0xBEEF,
        floor: 0.9,
        flow_threads: 1,
        repair_algorithm: None,
        admission: AdmissionPolicy::default(),
        churn: ChurnConfig {
            start: 2.0,
            spacing: 2.0,
            waves: 1,
        },
        fault_plan: Some(FaultPlan::storm(7)),
        supervision: SupervisionConfig::default(),
        session_faults: SessionFaults::default(),
    };
    let report = run_fleet(&config);
    assert_eq!(report.sessions.len(), 1000);
    assert!(report.metrics.total_swaps > 0, "the storm never bit");
    assert!(
        report.sessions.iter().all(|stats| stats.goodput > 0.0),
        "every session must deliver"
    );
    let rerun = FleetConfig {
        shards: 2,
        ..config
    };
    assert_eq!(
        report.to_json(),
        run_fleet(&rerun).to_json(),
        "the 1000-session report depends on shard count"
    );
}
