//! Supervision acceptance tests: crash isolation, quarantine determinism across
//! shard counts, watchdog escalation, bounded retry, and fleet checkpoint/resume
//! byte-identity — including under a seeded fault storm.

use bmp_serve::{
    run_fleet, run_fleet_with, Disposition, FleetCheckpoint, FleetConfig, FleetOptions, FleetRun,
    QuarantineReason, SessionFaults, SessionPanic, SessionWedge,
};
use bmp_sim::FaultPlan;

fn base_config() -> FleetConfig {
    FleetConfig {
        sessions: 6,
        shards: 1,
        receivers: 4,
        chunks: 24,
        seed: 0x0DDB41,
        ..FleetConfig::default()
    }
}

fn with_shards(config: &FleetConfig, shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        ..config.clone()
    }
}

#[test]
fn a_persistent_panic_exhausts_its_retries_identically_on_every_shard_count() {
    let mut config = base_config();
    config.session_faults.panics.push(SessionPanic {
        session: 2,
        round: 5,
        transient: false,
    });
    let reference = run_fleet(&config);
    // Default retry budget is 2: attempts 0 and 1 are re-admitted, attempt 2 is
    // permanent. Every record carries the deterministic panic-site tag.
    assert_eq!(reference.quarantined.len(), 3);
    for (attempt, record) in reference.quarantined.iter().enumerate() {
        assert_eq!(record.session, 2);
        assert_eq!(record.attempt, attempt as u32);
        assert_eq!(record.round, 5, "the panic site is deterministic");
        match &record.reason {
            QuarantineReason::Panic { tag } => {
                assert_eq!(tag, "injected session panic (session 2, round 5)");
            }
            other => panic!("expected a panic quarantine, got {other:?}"),
        }
    }
    assert!(matches!(
        reference.quarantined[0].disposition,
        Disposition::Retried { .. }
    ));
    assert!(matches!(
        reference.quarantined[1].disposition,
        Disposition::Retried { .. }
    ));
    assert_eq!(reference.quarantined[2].disposition, Disposition::Permanent);
    // Retry waves are strictly increasing re-admissions.
    let waves: Vec<usize> = reference.quarantined.iter().map(|r| r.wave).collect();
    assert!(waves.windows(2).all(|pair| pair[0] < pair[1]));
    assert_eq!(reference.metrics.sessions_quarantined, 1);
    assert_eq!(reference.metrics.session_retries, 2);
    assert_eq!(reference.metrics.sessions_run, 5);
    assert!(reference.sessions.iter().all(|row| row.session != 2));
    // Quarantine bookkeeping — records, retry waves, metric exclusion — must not
    // depend on which shard hosted the panicking session.
    let json = reference.to_json();
    for shards in [2usize, 4] {
        assert_eq!(
            json,
            run_fleet(&with_shards(&config, shards)).to_json(),
            "shard count {shards} changed the quarantine outcome"
        );
    }
}

#[test]
fn a_transient_panic_is_retried_and_its_rerun_matches_the_fault_free_row() {
    let mut config = base_config();
    config.session_faults.panics.push(SessionPanic {
        session: 2,
        round: 5,
        transient: true,
    });
    let report = run_fleet(&config);
    // One quarantine record (the attempt-0 panic, retried); the retry completes.
    assert_eq!(report.quarantined.len(), 1);
    assert!(matches!(
        report.quarantined[0].disposition,
        Disposition::Retried { .. }
    ));
    assert_eq!(report.metrics.sessions_quarantined, 0);
    assert_eq!(report.metrics.session_retries, 1);
    assert_eq!(report.metrics.sessions_run, config.sessions);
    // The retried session resumed from its checkpoint and replayed bit-identically:
    // its row equals the row of a fleet that never injected the panic.
    let mut clean = config.clone();
    clean.session_faults = SessionFaults::default();
    let clean_report = run_fleet(&clean);
    assert_eq!(report.sessions, clean_report.sessions);
}

#[test]
fn a_wedged_session_gets_one_forced_repair_then_a_stuck_quarantine() {
    let mut config = base_config();
    // No churn: the controller is never consulted on its own, so nothing can heal
    // the wedge behind the watchdog's back.
    config.churn.waves = 0;
    config.supervision.no_progress_rounds = Some(24);
    config.session_faults.wedges.push(SessionWedge {
        session: 1,
        round: 8,
    });
    let report = run_fleet(&config);
    assert_eq!(report.quarantined.len(), 1);
    let record = &report.quarantined[0];
    assert_eq!(record.session, 1);
    // The forced repair cannot rescue a wedge the controller never observed, so a
    // second full deadline passes and the session is permanently quarantined.
    assert_eq!(
        record.reason,
        QuarantineReason::Stuck {
            rounds_without_progress: 24
        }
    );
    assert_eq!(record.disposition, Disposition::Permanent);
    assert_eq!(report.metrics.sessions_quarantined, 1);
    assert_eq!(report.metrics.session_retries, 0);
    // Every other session is untouched: bit-equal to the fault-free fleet
    // restricted to the same session ids.
    let mut clean = config.clone();
    clean.session_faults = SessionFaults::default();
    let clean_report = run_fleet(&clean);
    for row in &report.sessions {
        let counterpart = clean_report
            .sessions
            .iter()
            .find(|clean_row| clean_row.session == row.session)
            .expect("fault-free fleet ran every session");
        assert_eq!(row, counterpart);
    }
    let json = report.to_json();
    for shards in [2usize, 4] {
        assert_eq!(json, run_fleet(&with_shards(&config, shards)).to_json());
    }
}

#[test]
fn the_round_budget_quarantines_runaway_sessions() {
    let mut config = base_config();
    config.sessions = 3;
    config.supervision.max_rounds = Some(5);
    let report = run_fleet(&config);
    // 24 chunks cannot finish in 5 rounds: every session trips the budget, at the
    // same deterministic round, with a permanent disposition.
    assert_eq!(report.quarantined.len(), 3);
    for record in &report.quarantined {
        assert_eq!(record.reason, QuarantineReason::Budget { rounds: 5 });
        assert_eq!(record.disposition, Disposition::Permanent);
    }
    assert_eq!(report.metrics.sessions_run, 0);
    assert_eq!(report.metrics.sessions_quarantined, 3);
    let json = report.to_json();
    assert_eq!(json, run_fleet(&with_shards(&config, 2)).to_json());
}

#[test]
fn the_acceptance_fleet_panic_wedge_and_storm_is_shard_agnostic() {
    // The ISSUE acceptance shape: a seeded fleet under a fault storm with one
    // injected panic and one injected wedge completes with exactly those two
    // sessions quarantined, everyone else bit-equal to a fault-free fleet, on
    // shard counts 1, 2 and 4.
    let mut config = base_config();
    config.sessions = 8;
    config.fault_plan = Some(FaultPlan::storm(41));
    // One early churn wave (rounds are 0.25 time units: depart at round 2, rejoin
    // at round 6): repair and the storm's solver faults get exercised, but no
    // churn-triggered swap lands after round 8 to heal the wedge behind the
    // watchdog's back.
    config.churn = bmp_serve::ChurnConfig {
        start: 0.5,
        spacing: 0.5,
        waves: 1,
    };
    config.supervision.no_progress_rounds = Some(24);
    config.supervision.max_retries = 1;
    config.session_faults = SessionFaults {
        panics: vec![SessionPanic {
            session: 3,
            round: 5,
            transient: false,
        }],
        wedges: vec![SessionWedge {
            session: 5,
            round: 8,
        }],
    };
    let reference = run_fleet(&config);
    let quarantined_sessions: Vec<usize> = reference
        .quarantined
        .iter()
        .filter(|record| record.disposition == Disposition::Permanent)
        .map(|record| record.session)
        .collect();
    assert_eq!(quarantined_sessions, vec![3, 5]);
    assert_eq!(reference.metrics.sessions_run, 6);
    // All surviving sessions' goodput is bit-equal to the fault-free fleet
    // restricted to the same ids.
    let mut clean = config.clone();
    clean.session_faults = SessionFaults::default();
    let clean_report = run_fleet(&clean);
    for row in &reference.sessions {
        let counterpart = clean_report
            .sessions
            .iter()
            .find(|clean_row| clean_row.session == row.session)
            .expect("fault-free fleet ran every session");
        assert_eq!(
            row.goodput.to_bits(),
            counterpart.goodput.to_bits(),
            "session {} was perturbed by a fault it never experienced",
            row.session
        );
    }
    let json = reference.to_json();
    for shards in [2usize, 4] {
        assert_eq!(
            json,
            run_fleet(&with_shards(&config, shards)).to_json(),
            "shard count {shards} changed the acceptance fleet"
        );
    }
}

#[test]
fn halted_fleets_resume_byte_identically_across_shard_counts() {
    let mut config = base_config();
    config.fault_plan = Some(FaultPlan::storm(41));
    let reference = run_fleet(&config).to_json();
    for (halt_shards, resume_shards) in [(1usize, 1usize), (2, 2), (4, 4), (1, 4), (4, 1)] {
        let halted = run_fleet_with(
            &with_shards(&config, halt_shards),
            FleetOptions {
                halt_after: Some(6),
                ..FleetOptions::default()
            },
        );
        let FleetRun::Halted(checkpoint) = halted else {
            panic!("halt-after 6 must park the fleet");
        };
        assert!(!checkpoint.pending.is_empty());
        // The checkpoint document round-trips through its JSON encoding.
        let roundtripped = FleetCheckpoint::from_json(&checkpoint.to_json()).unwrap();
        assert_eq!(roundtripped, checkpoint);
        let resumed = run_fleet_with(
            &with_shards(&config, resume_shards),
            FleetOptions {
                resume: Some(roundtripped),
                ..FleetOptions::default()
            },
        );
        assert_eq!(
            resumed.into_report().to_json(),
            reference,
            "halt on {halt_shards} shard(s), resume on {resume_shards} diverged"
        );
    }
}

#[test]
fn every_cadence_checkpoint_resumes_to_the_same_report() {
    // Three admission waves (cap 2, queue mode) with a cadence checkpoint after
    // every wave; resuming from each intermediate checkpoint reproduces the
    // uninterrupted report byte for byte.
    let mut config = base_config();
    config.admission.max_sessions = Some(2);
    config.admission.queue = true;
    let reference = run_fleet(&config).to_json();
    let mut checkpoints: Vec<FleetCheckpoint> = Vec::new();
    let mut sink = |checkpoint: &FleetCheckpoint| checkpoints.push(checkpoint.clone());
    let completed = run_fleet_with(
        &config,
        FleetOptions {
            checkpoint_every: 1,
            on_checkpoint: Some(&mut sink),
            ..FleetOptions::default()
        },
    );
    assert_eq!(completed.into_report().to_json(), reference);
    assert_eq!(
        checkpoints.len(),
        2,
        "two of the three waves leave work pending"
    );
    for checkpoint in checkpoints {
        let resumed = run_fleet_with(
            &config,
            FleetOptions {
                resume: Some(checkpoint),
                ..FleetOptions::default()
            },
        );
        assert_eq!(resumed.into_report().to_json(), reference);
    }
}
