//! The adaptation layer: controllers that re-solve and hot-swap overlays on churn.
//!
//! This module closes the loop between the solver stack of `bmp-core` and the data plane
//! of this crate. A [`Session`] steps the broadcast round by round; [`AdaptiveRun`] (and
//! its one-shot wrapper [`run_adaptive`]) watches the churn schedule and, whenever the
//! departed set changes, asks an [`AdaptationPolicy`] what to do. The policy either
//! keeps the current overlay (the paper's static control plane — [`StaticPolicy`]) or
//! returns a freshly solved overlay for the surviving platform, which the driver
//! hot-swaps into the running session without losing already-delivered chunks.
//!
//! ```text
//!      churn event                  AdaptationPolicy::adapt
//!   ┌──────────────┐   departed   ┌─────────────────────────┐   Some(overlay)
//!   │ ChurnSchedule ├────────────▶│ probe → residual → repair├───────────────┐
//!   └──────┬───────┘              └─────────────────────────┘               ▼
//!          │ set_alive                      ▲                        Session::hot_swap
//!          ▼                                │ EvalCtx (journal +              │
//!   ┌──────────────┐  step() / RoundStats   │ per-call arena, pool)           │
//!   │   Session    │◀───────────────────────┴─────────────────────────────────┘
//!   └──────────────┘   possession, credit and RNG survive the swap
//! ```
//!
//! # The hardened repair pipeline
//!
//! [`RepairController`] is the reference policy. On *every* membership change —
//! departures and rejoins alike, there is no separate restore path — it runs one state
//! machine:
//!
//! ```text
//!  probe: try_degradation_tolerance(victim)
//!     │            └─ injected timeout ⇒ recorded (probe_timed_out), pipeline continues
//!     ▼
//!  residual of the DEPLOYED overlay over the survivors
//!     │  ≥ floor ────────────────▶ keep the deployed overlay (no swap; degraded clears)
//!     │  < floor
//!     ▼
//!  re-solve the survivors: walk the solver registry() in order
//!     │  attempt fails transiently (injected fault, timeout, failed verification)
//!     │     └─ retry same solver, ≤ RETRIES_PER_SOLVER retries (modelled backoff:
//!     │        each retry consumes one unit of the cycle's attempt budget)
//!     │  solver rejects the instance (unsupported) ⇒ next registry solver
//!     │  REPAIR_ATTEMPT_BUDGET attempts exhausted
//!     │     └─ DEGRADED: keep stepping the last good overlay; its residual is floor-
//!     │        tracked in the controller and surfaced as SessionOutcome::degraded_floor
//!     ▼
//!  hot-swap the repaired overlay (degraded state clears; the solver that produced the
//!  plan — primary or fallback — is recorded in the decision log)
//! ```
//!
//! Step by step:
//!
//! 1. it probes how sensitive the *currently deployed* overlay is to the newest victim
//!    ([`bmp_core::churn::try_degradation_tolerance`] — the *copy-on-probe* exemplar, so
//!    the bisection rides the scheme's dirty-edge journal:
//!    [`bmp_core::solver::Telemetry::rescans_skipped`] grows); an injected probe timeout
//!    is recorded and survived, the residual check below stays authoritative,
//! 2. evaluates the residual throughput of the *currently deployed* overlay (the
//!    nominal one before any swap, the latest repaired one after) restricted to the
//!    survivors — an [`EvalCtx::min_max_flow_with`] evaluation on the context's
//!    per-call explicit arena that can fan out over the persistent flow pool. A rejoin
//!    is judged exactly like a departure: the returning node is merged into the
//!    *deployed* overlay's survivor set, so an overlay that starves it fails this check
//!    and triggers a fresh re-solve (which, on a full rejoin, reproduces the nominal
//!    overlay) instead of blindly restoring a remembered one,
//! 3. and only when the residual misses the configured floor re-solves the surviving
//!    platform through the fallible, fallback-capable [`bmp_core::churn::repair_with`]
//!    entry point, walking [`bmp_core::solver::registry`] with the retry/backoff budget
//!    shown above.
//!
//! The controller owns one long-lived [`EvalCtx`] for all of this, so arenas and flow
//! workspaces stay warm across churn events; its [`RepairController::set_parallelism`]
//! forwards to the context for pooled evaluation of large survivor overlays, and
//! [`RepairController::ctx_mut`] is the installation point for a
//! [`crate::faults::FaultPlan`] fault script.
//!
//! # Checkpoint & restore
//!
//! An adaptive run is crash-safe: [`AdaptiveRun::checkpoint`] captures the complete
//! driver state (the [`SessionSnapshot`] including the raw RNG state, the churn
//! schedule and event cursor, the swap/recovery timeline, and — when the run is
//! controller-driven — a [`ControllerSnapshot`] of the repair pipeline) into a
//! serde-backed [`RunCheckpoint`]. [`AdaptiveRun::resume`] validates and rehydrates the
//! run; stepping the resumed run produces a [`SimReport`] bit-identical to the
//! uninterrupted one under the same seed and trace, because every decision input
//! (overlay rates, instance bandwidths, RNG words) round-trips exactly through the
//! vendored JSON layer. Two deliberate non-goals: the controller's `EvalCtx` is rebuilt
//! fresh on resume (its caches are telemetry, never decision inputs), and an installed
//! fault script does *not* survive the checkpoint — fault plans live in the test
//! harness, not in the production snapshot.

use crate::engine::SimConfig;
use crate::events::{ChurnAction, ChurnSchedule};
use crate::metrics::SimReport;
use crate::overlay::Overlay;
use crate::session::{Session, SessionSnapshot};
use bmp_core::churn::{repair_with, try_degradation_tolerance, RepairPlan};
use bmp_core::scheme::BroadcastScheme;
use bmp_core::solver::{registry, EvalCtx};
use bmp_core::CoreError;
use bmp_platform::{Instance, NodeId};
use serde::{Deserialize, Serialize};

/// Solve attempts one membership change may consume — across retries *and* fallback
/// solvers — before the controller gives up and degrades.
pub const REPAIR_ATTEMPT_BUDGET: u32 = 8;

/// Transient-failure retries granted to each solver of the fallback chain before the
/// controller walks on to the next registry entry. Backoff is modelled, not slept:
/// simulated time does not advance during a repair, so each retry simply consumes one
/// unit of [`REPAIR_ATTEMPT_BUDGET`].
pub const RETRIES_PER_SOLVER: u32 = 2;

/// What a policy hands back when it wants the running overlay replaced.
#[derive(Debug, Clone)]
pub struct AdaptDecision {
    /// The replacement overlay, in the session's (original) node id space.
    pub overlay: Overlay,
    /// Nominal throughput the replacement was solved for (diagnostics).
    pub repaired_nominal: f64,
}

/// A controller consulted by [`run_adaptive`] whenever the departed set changes.
///
/// The contract: `adapt` receives the complete current set of departed receivers (not a
/// delta) and the simulated time, and returns `Some` replacement overlay — over the
/// *same* node id space as the running session — to trigger a hot-swap, or `None` to
/// keep the current overlay. The driver calls it once per membership change, before the
/// first round at which the change is effective; implementations are free to keep state
/// (solvers, evaluation contexts, decision logs) across calls.
pub trait AdaptationPolicy {
    /// Label used in reports and CSV output.
    fn label(&self) -> &'static str;

    /// Reacts to the current departed set; `Some` means hot-swap the returned overlay.
    fn adapt(&mut self, departed: &[NodeId], time: f64) -> Option<AdaptDecision>;

    /// When the policy is in the graceful-degradation terminal state (it wanted to
    /// repair but exhausted its budget), the floor-tracked residual throughput of the
    /// last good overlay it is keeping alive. `None` for policies that never degrade —
    /// the default.
    fn degraded_floor(&self) -> Option<f64> {
        None
    }
}

/// The paper's baseline: the overlay is computed once and never adapted.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPolicy;

impl AdaptationPolicy for StaticPolicy {
    fn label(&self) -> &'static str {
        "static"
    }

    fn adapt(&mut self, _departed: &[NodeId], _time: f64) -> Option<AdaptDecision> {
        None
    }
}

/// One `adapt` call of a [`RepairController`], for telemetry, CSV output and the
/// controller checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerDecision {
    /// Simulated time of the membership change.
    pub time: f64,
    /// The departed receivers at that time.
    pub departed: Vec<NodeId>,
    /// Journal-riding degradation tolerance of the newest victim, probed on the overlay
    /// that was deployed at decision time (1.0 when the departed set was empty — a pure
    /// rejoin — or when the probe was timed out by an injected fault).
    pub victim_tolerance: f64,
    /// Whether the victim probe was cut short by an injected timeout
    /// ([`bmp_core::CoreError::Timeout`]). The pipeline records and survives it: the
    /// residual check is authoritative.
    pub probe_timed_out: bool,
    /// Residual throughput of the overlay that was *deployed* at decision time (the
    /// nominal one before any swap, the latest repaired one after), restricted to the
    /// survivors.
    pub residual: f64,
    /// Nominal throughput of the replacement overlay, when one was issued.
    pub repaired: Option<f64>,
    /// Solve attempts consumed by this decision's repair cycle (0 when the residual met
    /// the floor and no repair was tried).
    pub attempts: u32,
    /// Registry name of the solver that produced the issued plan (`"acyclic-guarded"`
    /// when the primary succeeded, a fallback's name otherwise).
    pub solver: Option<String>,
    /// Whether this decision left the controller in the graceful-degradation state
    /// (repair wanted, budget exhausted, last good overlay kept).
    pub degraded: bool,
}

/// What one budgeted walk of the fallback chain produced.
struct RepairAttempt {
    plan: Option<RepairPlan>,
    attempts: u32,
    solver: Option<&'static str>,
    exhausted: bool,
}

/// Whether a repair error is worth retrying on the same solver (injected faults, probe
/// timeouts and failed verifications are transient; instance-class rejections are not).
fn is_transient(error: &CoreError) -> bool {
    matches!(
        error,
        CoreError::InjectedFault { .. }
            | CoreError::Timeout { .. }
            | CoreError::VerificationFailed { .. }
    )
}

/// The reference adaptation policy: incremental re-solve of the surviving platform (see
/// the module docs for the probe → residual → re-solve → retry/backoff → fallback chain
/// → degraded floor pipeline).
#[derive(Debug)]
pub struct RepairController {
    instance: Instance,
    nominal: f64,
    floor: f64,
    ctx: EvalCtx,
    decisions: Vec<ControllerDecision>,
    /// The overlay currently carrying the broadcast, as a scheme over the *original*
    /// instance (the nominal scheme until the first swap). Both controller probes judge
    /// this, not the long-replaced nominal overlay — a second departure that cripples a
    /// repaired overlay would otherwise be judged against the wrong graph.
    deployed: BroadcastScheme,
    /// The departed set of the previous `adapt` call, for identifying the nodes that
    /// changed in this one.
    previous_departed: Vec<NodeId>,
    /// Whether the deployed overlay is still the nominal one (no repair has replaced
    /// it, or a rejoin re-solve reproduced its throughput). Diagnostics only.
    nominal_deployed: bool,
    /// Whether the controller is in the graceful-degradation terminal state: a repair
    /// was wanted but the attempt budget ran dry, so the session keeps stepping on the
    /// last good overlay.
    degraded: bool,
    /// Floor-tracked residual throughput of the last good overlay while degraded (the
    /// minimum residual observed across degraded decisions). Cleared on recovery.
    degraded_floor: Option<f64>,
    /// Registry name of the solver to try *first* in the repair fallback chain
    /// (`simulate --repair-algorithm`). `None` keeps the registry order as-is; the
    /// remaining solvers still serve as fallbacks either way.
    preferred_solver: Option<String>,
}

impl RepairController {
    /// Creates a controller for a session broadcasting `scheme` (nominal throughput
    /// `nominal`) over `instance`. The controller repairs as soon as the deployed
    /// overlay's residual throughput drops below `floor_fraction × nominal`.
    ///
    /// # Panics
    ///
    /// Panics if `floor_fraction` is outside `(0, 1]` or `nominal` is not positive.
    #[must_use]
    pub fn new(
        instance: Instance,
        scheme: BroadcastScheme,
        nominal: f64,
        floor_fraction: f64,
    ) -> Self {
        assert!(
            floor_fraction > 0.0 && floor_fraction <= 1.0,
            "floor fraction must lie in (0, 1]"
        );
        assert!(nominal > 0.0, "nominal throughput must be positive");
        RepairController {
            floor: floor_fraction * nominal,
            deployed: scheme,
            instance,
            nominal,
            ctx: EvalCtx::new(),
            decisions: Vec::new(),
            previous_departed: Vec::new(),
            nominal_deployed: true,
            degraded: false,
            degraded_floor: None,
            preferred_solver: None,
        }
    }

    /// Moves the named solver to the front of the repair fallback chain (`None`
    /// restores the plain [`registry`] order). The name is not validated here — an
    /// unknown name simply matches nothing and leaves the chain unchanged; the CLI
    /// validates against [`bmp_core::solver::find`] before calling this.
    pub fn set_repair_algorithm(&mut self, name: Option<String>) {
        self.preferred_solver = name;
    }

    /// The currently preferred repair solver, if one was pinned.
    #[must_use]
    pub fn repair_algorithm(&self) -> Option<&str> {
        self.preferred_solver.as_deref()
    }

    /// Residual throughput of the *currently deployed* overlay restricted to the
    /// survivors of `departed` (per-call explicit arena, pooled at the configured
    /// parallelism).
    fn deployed_residual(&mut self, departed: &[NodeId]) -> f64 {
        let n = self.instance.num_nodes();
        let mut alive = vec![true; n];
        for &node in departed {
            if node < n {
                alive[node] = false;
            }
        }
        let survivors: Vec<NodeId> = (1..n).filter(|&node| alive[node]).collect();
        let deployed = &self.deployed;
        let residual = self.ctx.min_max_flow_with(n, 0, &survivors, |edges| {
            edges.extend(
                deployed
                    .edges()
                    .into_iter()
                    .filter(|&(from, to, _)| alive[from] && alive[to]),
            );
        });
        if residual.is_finite() {
            residual
        } else {
            0.0
        }
    }

    /// One budgeted walk of the fallback chain: every [`registry`] solver in order
    /// (with the pinned [`RepairController::set_repair_algorithm`] solver, if any,
    /// moved to the front), up to [`RETRIES_PER_SOLVER`] transient-failure retries
    /// each, at most [`REPAIR_ATTEMPT_BUDGET`] solve attempts in total.
    ///
    /// `residual` is the verified residual throughput of the still-deployed overlay on
    /// the survivors: each solve is warm-started from it as the lower bisection bracket
    /// ([`EvalCtx::set_warm_start_lower`] — advisory and probed, never trusted, so a
    /// cyclic residual above the acyclic optimum only narrows the bracket from above).
    /// The hint is one-shot, so it is re-armed before every attempt, retries included.
    ///
    /// When incremental mode is on (the process default via `BMP_INCREMENTAL` /
    /// `set_default_incremental`, or [`RepairController::set_incremental`]), the warm
    /// lower bracket composes with warm residual reuse: the bracket skips the probes
    /// below the residual, and the remaining probes reuse each sink's retained
    /// residual across the attempt loop — observable as `flows_warm_started` in the
    /// controller's telemetry.
    fn attempt_repair(&mut self, departed: &[NodeId], residual: f64) -> RepairAttempt {
        let warm_start = (residual > 0.0).then_some(residual);
        let mut solvers = registry();
        if let Some(name) = self.preferred_solver.as_deref() {
            if let Some(position) = solvers.iter().position(|solver| solver.name() == name) {
                let preferred = solvers.remove(position);
                solvers.insert(0, preferred);
            }
        }
        let mut attempts = 0u32;
        for solver in solvers {
            let mut tries = 0u32;
            loop {
                if attempts >= REPAIR_ATTEMPT_BUDGET {
                    return RepairAttempt {
                        plan: None,
                        attempts,
                        solver: None,
                        exhausted: true,
                    };
                }
                attempts += 1;
                tries += 1;
                self.ctx.set_warm_start_lower(warm_start);
                match repair_with(&self.instance, departed, solver.as_ref(), &mut self.ctx) {
                    Ok(plan) => {
                        return RepairAttempt {
                            plan,
                            attempts,
                            solver: Some(solver.name()),
                            exhausted: false,
                        };
                    }
                    Err(error) if is_transient(&error) && tries <= RETRIES_PER_SOLVER => {
                        // Modelled backoff: the retry consumed one budget unit; walk
                        // the loop again on the same solver.
                    }
                    Err(_) => break, // non-transient, or this solver's retries are spent
                }
            }
        }
        RepairAttempt {
            plan: None,
            attempts,
            solver: None,
            exhausted: true,
        }
    }

    /// Forwards to [`EvalCtx::set_parallelism`]: residual probes of large survivor
    /// overlays fan out over the persistent flow worker pool (`0` = auto heuristic).
    pub fn set_parallelism(&mut self, threads: usize) {
        self.ctx.set_parallelism(threads);
    }

    /// Forwards to [`EvalCtx::set_speculation`]: repair re-solves speculate `depth`
    /// extra dichotomic levels against the flow pool (`0` = serial probing). The
    /// repaired overlays are bit-identical at any depth.
    pub fn set_speculation(&mut self, depth: usize) {
        self.ctx.set_speculation(depth);
    }

    /// Forwards to [`EvalCtx::set_incremental`]: repair re-solves and residual probes
    /// reuse warm residual states across the attempt loop, composing with the warm
    /// lower bracket the repair attempt loop arms (`attempt_repair`). Repaired overlays and
    /// decisions are bit-identical either way; the reuse shows up as
    /// `flows_warm_started` / `augment_saved` / `excess_drained` in the controller's
    /// telemetry.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.ctx.set_incremental(enabled);
    }

    /// The controller's evaluation context (telemetry: flow solves, bisection probes,
    /// journal fast-path counters).
    #[must_use]
    pub fn ctx(&self) -> &EvalCtx {
        &self.ctx
    }

    /// Mutable access to the evaluation context — the installation point for a
    /// [`crate::faults::FaultPlan`] fault script
    /// ([`FaultPlan::install`](crate::faults::FaultPlan::install)).
    pub fn ctx_mut(&mut self) -> &mut EvalCtx {
        &mut self.ctx
    }

    /// Every `adapt` call so far, oldest first.
    #[must_use]
    pub fn decisions(&self) -> &[ControllerDecision] {
        &self.decisions
    }

    /// Whether the controller is in the graceful-degradation terminal state (see
    /// [`AdaptationPolicy::degraded_floor`]).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Captures the complete control-plane state into a serializable snapshot. The
    /// evaluation context is deliberately *not* captured: its caches and counters are
    /// telemetry, never decision inputs, so a resumed controller with a fresh context
    /// makes bit-identical decisions. An installed fault script is not captured either
    /// (fault plans belong to the test harness, not the production snapshot).
    #[must_use]
    pub fn checkpoint(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            source_bandwidth: self.instance.source_bandwidth(),
            open_bandwidths: self
                .instance
                .open_indices()
                .map(|i| self.instance.bandwidth(i))
                .collect(),
            guarded_bandwidths: self
                .instance
                .guarded_indices()
                .map(|i| self.instance.bandwidth(i))
                .collect(),
            deployed_edges: self.deployed.edges(),
            nominal: self.nominal,
            floor: self.floor,
            previous_departed: self.previous_departed.clone(),
            nominal_deployed: self.nominal_deployed,
            degraded: self.degraded,
            degraded_floor: self.degraded_floor,
            preferred_solver: self.preferred_solver.clone(),
            decisions: self.decisions.clone(),
        }
    }

    /// Rehydrates a controller from a [`ControllerSnapshot`], validating it first.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's bandwidths do not form a valid platform instance, its
    /// floor/nominal are inconsistent, its deployed edges or departed set reference
    /// nodes outside the instance, or its degradation flags disagree.
    #[must_use]
    pub fn resume(snapshot: &ControllerSnapshot) -> Self {
        assert!(
            snapshot.nominal > 0.0,
            "controller snapshot: nominal throughput must be positive"
        );
        assert!(
            snapshot.floor > 0.0 && snapshot.floor <= snapshot.nominal,
            "controller snapshot: floor must lie in (0, nominal]"
        );
        assert_eq!(
            snapshot.degraded,
            snapshot.degraded_floor.is_some(),
            "controller snapshot: degradation flag and floor disagree"
        );
        let instance = Instance::new_presorted(
            snapshot.source_bandwidth,
            snapshot.open_bandwidths.clone(),
            snapshot.guarded_bandwidths.clone(),
        )
        .expect("controller snapshot holds an invalid platform instance");
        let n = instance.num_nodes();
        for &node in &snapshot.previous_departed {
            assert!(
                node != 0 && node < n,
                "controller snapshot departs node {node} outside the {n}-node instance"
            );
        }
        let mut deployed = BroadcastScheme::new(instance.clone());
        for &(from, to, rate) in &snapshot.deployed_edges {
            assert!(
                from < n && to < n,
                "controller snapshot deploys an edge outside the instance"
            );
            deployed.set_rate(from, to, rate);
        }
        RepairController {
            instance,
            nominal: snapshot.nominal,
            floor: snapshot.floor,
            ctx: EvalCtx::new(),
            decisions: snapshot.decisions.clone(),
            deployed,
            previous_departed: snapshot.previous_departed.clone(),
            nominal_deployed: snapshot.nominal_deployed,
            degraded: snapshot.degraded,
            degraded_floor: snapshot.degraded_floor,
            preferred_solver: snapshot.preferred_solver.clone(),
        }
    }
}

impl AdaptationPolicy for RepairController {
    fn label(&self) -> &'static str {
        "repair"
    }

    fn adapt(&mut self, departed: &[NodeId], time: f64) -> Option<AdaptDecision> {
        // 1. Sensitivity probe of the newest victim (the node that departed since the
        //    previous call; an arbitrary departed node when only rejoins happened): a
        //    dichotomic search whose re-evaluations ride the scheme's dirty-edge
        //    journal (copy-on-probe). A pure rejoin has no victim to probe, and an
        //    injected probe timeout is recorded and survived — the residual check
        //    below stays authoritative either way.
        let victim = departed
            .iter()
            .copied()
            .find(|node| !self.previous_departed.contains(node))
            .or_else(|| departed.last().copied());
        self.previous_departed = departed.to_vec();
        let (victim_tolerance, probe_timed_out) = match victim {
            None => (1.0, false),
            Some(victim) => {
                match try_degradation_tolerance(&self.deployed, victim, self.floor, &mut self.ctx) {
                    Ok(tolerance) => (tolerance, false),
                    Err(_) => (1.0, true),
                }
            }
        };
        // 2. Authoritative check: residual throughput of the overlay the session is
        //    *currently* running, restricted to the survivors. Rejoined nodes are part
        //    of the survivor set, so an overlay that starves a returning node fails
        //    this check and is re-solved — the rejoin merges into the deployed state
        //    instead of blindly restoring a remembered overlay.
        let residual = self.deployed_residual(departed);
        let (decision, attempts, solver, degraded_now) = if residual + 1e-12 >= self.floor {
            // The deployed overlay serves everyone present at the floor: no swap, and
            // any earlier degradation is over.
            self.degraded = false;
            self.degraded_floor = None;
            (None, 0, None, false)
        } else {
            // 3. Re-solve the surviving platform through the budgeted fallback chain,
            //    warm-starting each bisection from the verified residual.
            let attempt = self.attempt_repair(departed, residual);
            // A hint armed for a solver that ignores warm-starts must not leak into a
            // later, unrelated solve on this context.
            self.ctx.set_warm_start_lower(None);
            match attempt.plan {
                Some(plan) => {
                    let overlay = Overlay::new(self.instance.num_nodes(), plan.edges.clone());
                    // Rebuild the deployed scheme over the original instance so the
                    // next decision's probes judge what the session is actually
                    // running.
                    let mut deployed = BroadcastScheme::new(self.instance.clone());
                    for &(from, to, rate) in &plan.edges {
                        deployed.set_rate(from, to, rate);
                    }
                    self.deployed = deployed;
                    self.nominal_deployed = false;
                    self.degraded = false;
                    self.degraded_floor = None;
                    (
                        Some(AdaptDecision {
                            overlay,
                            repaired_nominal: plan.throughput,
                        }),
                        attempt.attempts,
                        attempt.solver.map(str::to_string),
                        false,
                    )
                }
                None => {
                    if attempt.exhausted {
                        // Graceful degradation: keep stepping the last good overlay
                        // and floor-track how much it still delivers.
                        self.degraded = true;
                        self.degraded_floor = Some(match self.degraded_floor {
                            Some(floor) => floor.min(residual),
                            None => residual,
                        });
                    }
                    (None, attempt.attempts, None, self.degraded)
                }
            }
        };
        self.decisions.push(ControllerDecision {
            time,
            departed: departed.to_vec(),
            victim_tolerance,
            probe_timed_out,
            residual,
            repaired: decision.as_ref().map(|d| d.repaired_nominal),
            attempts,
            solver,
            degraded: degraded_now,
        });
        decision
    }

    fn degraded_floor(&self) -> Option<f64> {
        self.degraded_floor
    }
}

/// Serializable control-plane state of a [`RepairController`]: the platform's
/// bandwidths (enough to rebuild the [`Instance`] exactly — f64 values round-trip
/// bit-exactly through the vendored JSON layer), the deployed overlay's edges, the
/// floor and degradation bookkeeping, and the full decision log. Produced by
/// [`RepairController::checkpoint`], consumed by [`RepairController::resume`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerSnapshot {
    source_bandwidth: f64,
    open_bandwidths: Vec<f64>,
    guarded_bandwidths: Vec<f64>,
    deployed_edges: Vec<(usize, usize, f64)>,
    nominal: f64,
    floor: f64,
    previous_departed: Vec<usize>,
    nominal_deployed: bool,
    degraded: bool,
    degraded_floor: Option<f64>,
    preferred_solver: Option<String>,
    decisions: Vec<ControllerDecision>,
}

/// One membership change as seen by the driver: whether a swap happened and when the
/// data plane recovered from it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwapEvent {
    /// Simulated time at which the membership change took effect.
    pub time: f64,
    /// Whether the policy issued a replacement overlay.
    pub swapped: bool,
    /// Nominal throughput of the replacement, when one was issued.
    pub repaired_nominal: Option<f64>,
    /// First time after the change at which no active receiver starved (every alive,
    /// incomplete receiver gained at least one chunk in the round) — the post-churn
    /// recovery instant. `None` when the run ended still starved. The metric tracks
    /// whether anyone *present* is starving: a later membership change that removes the
    /// starved receivers themselves also counts as recovery, because the broadcast is
    /// healthy again for everyone who remains.
    pub recovered_at: Option<f64>,
}

/// Outcome of one adaptive run: the delivery report plus the swap/recovery timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The per-node delivery report.
    pub report: SimReport,
    /// One entry per membership change, in order.
    pub swaps: Vec<SwapEvent>,
    /// Receivers alive at the end of the run — the session's final churn state, which
    /// can differ from the schedule's final state when the broadcast completes before
    /// later events fire (those events were never simulated and must not skew the
    /// goodput denominator).
    pub survivors: Vec<NodeId>,
    /// Nominal throughput of the initial overlay (the comparison baseline).
    pub nominal: f64,
    /// When the policy ended the run in the graceful-degradation state, the
    /// floor-tracked residual throughput of the last good overlay it kept stepping
    /// ([`AdaptationPolicy::degraded_floor`]); `None` for a healthy run.
    pub degraded_floor: Option<f64>,
}

impl SessionOutcome {
    /// Average delivered data rate per surviving receiver ([`SimReport::delivered_goodput`]).
    #[must_use]
    pub fn goodput(&self) -> f64 {
        self.report.delivered_goodput(&self.survivors)
    }

    /// Delivered goodput as a fraction of the nominal throughput — the headline metric
    /// of the static-vs-repaired comparison.
    #[must_use]
    pub fn goodput_vs_nominal(&self) -> f64 {
        if self.nominal <= 0.0 {
            0.0
        } else {
            self.goodput() / self.nominal
        }
    }

    /// Time from the last hot-swap to its recovery instant (`None` without a swap, or
    /// when the run ended before recovering).
    #[must_use]
    pub fn recovery_time(&self) -> Option<f64> {
        self.swaps
            .iter()
            .rev()
            .find(|s| s.swapped)
            .and_then(|s| s.recovered_at.map(|at| at - s.time))
    }
}

/// A resumable adaptive run: the stepped closed loop of [`run_adaptive`], exposed one
/// round at a time so a caller can checkpoint between rounds
/// ([`AdaptiveRun::checkpoint`]), crash, and [`AdaptiveRun::resume`] later with a
/// bit-identical continuation. The policy is passed to every [`AdaptiveRun::step`]
/// call rather than owned, so one driver type serves both [`StaticPolicy`] and
/// [`RepairController`] runs.
#[derive(Debug)]
pub struct AdaptiveRun {
    session: Session,
    churn: ChurnSchedule,
    next_event: usize,
    swaps: Vec<SwapEvent>,
    awaiting_recovery: Vec<usize>,
    nominal: f64,
    /// Whether the most recent [`AdaptiveRun::step`] reported
    /// [`RoundStats::all_active_progressed`](crate::session::RoundStats). Transient
    /// watchdog input — deliberately *not* part of [`RunCheckpoint`] (it is never read
    /// before the next step, so a resumed run re-derives it identically).
    last_round_progressed: bool,
}

impl AdaptiveRun {
    /// Starts a run: the session broadcasts over `overlay` under `config`, `churn` is
    /// applied as rounds pass, and `nominal` is the initial overlay's solved
    /// throughput (the goodput baseline).
    ///
    /// # Panics
    ///
    /// Panics if a churn event targets a node outside the overlay.
    #[must_use]
    pub fn new(overlay: Overlay, config: SimConfig, churn: ChurnSchedule, nominal: f64) -> Self {
        let n = overlay.num_nodes();
        for event in churn.events() {
            assert!(
                event.node < n,
                "churn event targets node {} but the overlay has {n} nodes",
                event.node
            );
        }
        AdaptiveRun {
            session: Session::new(overlay, config),
            churn,
            next_event: 0,
            swaps: Vec::new(),
            awaiting_recovery: Vec::new(),
            nominal,
            last_round_progressed: false,
        }
    }

    /// The underlying stepped session.
    #[must_use]
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The swap/recovery timeline so far.
    #[must_use]
    pub fn swaps(&self) -> &[SwapEvent] {
        &self.swaps
    }

    /// Whether the run is over: the broadcast completed or the round budget ran out.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.session.is_complete() || self.session.rounds_run() >= self.session.config().max_rounds
    }

    /// Advances one round: applies due churn events, consults `policy` on a membership
    /// change (hot-swapping its replacement overlay), steps the data plane and updates
    /// the recovery timeline. Returns [`AdaptiveRun::is_finished`] afterwards; stepping
    /// a finished run is a no-op returning `true`.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns an overlay over a different node id space.
    pub fn step(&mut self, policy: &mut dyn AdaptationPolicy) -> bool {
        if self.is_finished() {
            return true;
        }
        let n = self.session.overlay().num_nodes();
        let time_start = self.session.time();
        let mut membership_changed = false;
        while self.next_event < self.churn.events().len()
            && self.churn.events()[self.next_event].time <= time_start
        {
            let event = self.churn.events()[self.next_event];
            self.session
                .set_alive(event.node, matches!(event.action, ChurnAction::Rejoin));
            membership_changed = true;
            self.next_event += 1;
        }
        if membership_changed {
            let departed: Vec<NodeId> = (1..n).filter(|&v| !self.session.is_alive(v)).collect();
            let decision = policy.adapt(&departed, time_start);
            let mut record = SwapEvent {
                time: time_start,
                swapped: false,
                repaired_nominal: None,
                recovered_at: None,
            };
            if let Some(decision) = decision {
                record.swapped = true;
                record.repaired_nominal = Some(decision.repaired_nominal);
                self.session.hot_swap(decision.overlay);
            }
            self.swaps.push(record);
            self.awaiting_recovery.push(self.swaps.len() - 1);
        }
        let stats = self.session.step();
        self.last_round_progressed = stats.all_active_progressed;
        if stats.all_active_progressed && !self.awaiting_recovery.is_empty() {
            for &index in &self.awaiting_recovery {
                self.swaps[index].recovered_at = Some(self.session.time());
            }
            self.awaiting_recovery.clear();
        }
        self.is_finished()
    }

    /// Whether the most recent [`AdaptiveRun::step`] delivered at least one chunk to
    /// every alive, incomplete receiver
    /// ([`RoundStats::all_active_progressed`](crate::session::RoundStats)). `false`
    /// before the first step after construction or resume. This is the no-progress
    /// signal a stuck-session watchdog accumulates.
    #[must_use]
    pub fn last_round_progressed(&self) -> bool {
        self.last_round_progressed
    }

    /// Forces one adaptation decision *outside* the churn path: computes the current
    /// departed set, consults `policy` at the current simulated time, and hot-swaps a
    /// returned replacement exactly as a churn-triggered decision would — the swap is
    /// recorded in the timeline and awaits recovery like any other. Returns whether a
    /// replacement overlay was actually swapped in.
    ///
    /// This is the watchdog's escalation hook: when a session stops progressing
    /// without a membership change (a wedged overlay, for instance), the supervisor
    /// grants one forced repair attempt before quarantining. A no-op on a finished
    /// run.
    pub fn force_repair(&mut self, policy: &mut dyn AdaptationPolicy) -> bool {
        if self.is_finished() {
            return false;
        }
        let n = self.session.overlay().num_nodes();
        let time = self.session.time();
        let departed: Vec<NodeId> = (1..n).filter(|&v| !self.session.is_alive(v)).collect();
        let decision = policy.adapt(&departed, time);
        let mut record = SwapEvent {
            time,
            swapped: false,
            repaired_nominal: None,
            recovered_at: None,
        };
        if let Some(decision) = decision {
            record.swapped = true;
            record.repaired_nominal = Some(decision.repaired_nominal);
            self.session.hot_swap(decision.overlay);
        }
        self.swaps.push(record);
        self.awaiting_recovery.push(self.swaps.len() - 1);
        record.swapped
    }

    /// Replaces the running overlay directly, bypassing every policy and recording
    /// nothing in the swap timeline. This is a *chaos hook* for supervision tests — it
    /// lets a harness wedge a session (e.g. with an edgeless overlay) without the
    /// control plane noticing, exactly the failure mode the stuck-session watchdog
    /// exists to catch. Production paths never call it.
    ///
    /// # Panics
    ///
    /// Panics if `overlay` spans a different node id space than the running session.
    pub fn replace_overlay(&mut self, overlay: Overlay) {
        assert_eq!(
            overlay.num_nodes(),
            self.session.overlay().num_nodes(),
            "replacement overlay must span the session's node id space"
        );
        self.session.hot_swap(overlay);
    }

    /// Assembles the [`SessionOutcome`] of the run so far (normally called once
    /// [`AdaptiveRun::is_finished`]); `policy` contributes its degradation state.
    #[must_use]
    pub fn outcome(&self, policy: &dyn AdaptationPolicy) -> SessionOutcome {
        let n = self.session.overlay().num_nodes();
        SessionOutcome {
            survivors: (1..n).filter(|&node| self.session.is_alive(node)).collect(),
            report: self.session.report(),
            swaps: self.swaps.clone(),
            nominal: self.nominal,
            degraded_floor: policy.degraded_floor(),
        }
    }

    /// Captures the complete run state — session snapshot (with raw RNG words), churn
    /// schedule and event cursor, swap/recovery timeline, and the controller's
    /// [`ControllerSnapshot`] for a [`RepairController`]-driven run (`None` for a
    /// static run) — into one self-contained, serializable checkpoint.
    #[must_use]
    pub fn checkpoint(&self, controller: Option<&RepairController>) -> RunCheckpoint {
        RunCheckpoint {
            session: self.session.checkpoint(),
            churn: self.churn.clone(),
            next_event: self.next_event,
            swaps: self.swaps.clone(),
            awaiting_recovery: self.awaiting_recovery.clone(),
            nominal: self.nominal,
            controller: controller.map(RepairController::checkpoint),
        }
    }

    /// Rehydrates a run (and its controller, when the checkpoint carries one) from a
    /// [`RunCheckpoint`], validating every layer. Stepping the resumed run under the
    /// same policy replays the uninterrupted run bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint is internally inconsistent (cursor past the schedule,
    /// recovery indices outside the timeline, session/controller validation failures).
    #[must_use]
    pub fn resume(checkpoint: RunCheckpoint) -> (Self, Option<RepairController>) {
        let RunCheckpoint {
            session,
            churn,
            next_event,
            swaps,
            awaiting_recovery,
            nominal,
            controller,
        } = checkpoint;
        let session = Session::resume(session);
        let n = session.overlay().num_nodes();
        for event in churn.events() {
            assert!(
                event.node < n,
                "checkpointed churn event targets node {} but the overlay has {n} nodes",
                event.node
            );
        }
        assert!(
            next_event <= churn.events().len(),
            "checkpoint event cursor is past the end of the schedule"
        );
        for &index in &awaiting_recovery {
            assert!(
                index < swaps.len(),
                "checkpoint recovery index {index} is outside the swap timeline"
            );
        }
        let controller = controller.as_ref().map(RepairController::resume);
        (
            AdaptiveRun {
                session,
                churn,
                next_event,
                swaps,
                awaiting_recovery,
                nominal,
                last_round_progressed: false,
            },
            controller,
        )
    }
}

/// A crash-safe checkpoint of an [`AdaptiveRun`]: everything needed to resume the run
/// — no other flags or files required — serialized through the vendored JSON layer.
/// The invariant (exercised by the crash-recovery CI smoke): resuming from any
/// checkpoint of a run yields a final [`SimReport`] bit-identical to the uninterrupted
/// run under the same seed and trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunCheckpoint {
    session: SessionSnapshot,
    churn: ChurnSchedule,
    next_event: usize,
    swaps: Vec<SwapEvent>,
    awaiting_recovery: Vec<usize>,
    nominal: f64,
    controller: Option<ControllerSnapshot>,
}

impl RunCheckpoint {
    /// Whether the checkpoint carries a [`ControllerSnapshot`] (a repair-driven run)
    /// rather than describing a static run.
    #[must_use]
    pub fn has_controller(&self) -> bool {
        self.controller.is_some()
    }
}

/// Runs a closed-loop session: steps the data plane over `overlay`, applies `churn`, and
/// lets `policy` hot-swap replacement overlays on every membership change. `nominal` is
/// the initial overlay's solved throughput (the goodput baseline).
///
/// Determinism: the session RNG is seeded once from [`SimConfig::seed`]; with a
/// deterministic policy (both [`StaticPolicy`] and [`RepairController`] are), the same
/// seed, schedule and configuration replay to a bit-identical [`SessionOutcome`].
///
/// # Panics
///
/// Panics if a churn event targets a node outside the overlay, or the policy returns an
/// overlay over a different node id space.
#[must_use]
pub fn run_adaptive(
    overlay: Overlay,
    config: SimConfig,
    churn: &ChurnSchedule,
    policy: &mut dyn AdaptationPolicy,
    nominal: f64,
) -> SessionOutcome {
    let mut run = AdaptiveRun::new(overlay, config, churn.clone(), nominal);
    while !run.step(policy) {}
    run.outcome(policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::ChurnEvent;
    use crate::faults::FaultPlan;
    use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
    use bmp_platform::paper::figure1;

    fn solved_figure1() -> (Instance, BroadcastScheme, f64, Overlay) {
        let instance = figure1();
        let solution = AcyclicGuardedSolver::default().solve(&instance);
        let overlay = Overlay::from_scheme(&solution.scheme);
        (instance, solution.scheme, solution.throughput, overlay)
    }

    fn config() -> SimConfig {
        SimConfig {
            num_chunks: 200,
            chunk_size: 0.5,
            round_duration: 0.25,
            max_rounds: 4_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn static_policy_never_swaps_and_starves_on_a_relay_departure() {
        let (_, _, nominal, overlay) = solved_figure1();
        // C3 is the load-bearing guarded relay of the Figure 1 solution.
        let churn = ChurnSchedule::departures_at(5.0, &[3]);
        let mut policy = StaticPolicy;
        let outcome = run_adaptive(overlay, config(), &churn, &mut policy, nominal);
        assert_eq!(outcome.swaps.len(), 1);
        assert!(!outcome.swaps[0].swapped);
        assert!(outcome.goodput_vs_nominal() < 1.0);
        assert_eq!(outcome.survivors, vec![1, 2, 4, 5]);
        assert_eq!(outcome.degraded_floor, None);
    }

    #[test]
    fn repair_controller_swaps_on_a_load_bearing_departure_and_beats_static() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::departures_at(5.0, &[3]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        let repaired = run_adaptive(overlay.clone(), config(), &churn, &mut controller, nominal);
        let static_run = run_adaptive(overlay, config(), &churn, &mut StaticPolicy, nominal);
        assert_eq!(repaired.swaps.len(), 1);
        assert!(
            repaired.swaps[0].swapped,
            "relay departure must trigger repair"
        );
        let repaired_nominal = repaired.swaps[0].repaired_nominal.unwrap();
        assert!(repaired_nominal > 0.0);
        // Same seed, same trace: the repaired session delivers strictly more.
        assert!(
            repaired.goodput() > static_run.goodput(),
            "repaired {} vs static {}",
            repaired.goodput(),
            static_run.goodput()
        );
        assert!(repaired.recovery_time().is_some());
        // The controller's decision pipeline ran: degradation probes (bisection) and
        // residual evaluations through its one long-lived context — and the re-probes
        // rode the dirty-edge journal (unless the CI kill switch disabled it).
        let decision = &controller.decisions()[0];
        assert_eq!(decision.departed, vec![3]);
        assert!(decision.residual < 0.9 * nominal);
        // The unfaulted primary succeeds on its first attempt.
        assert_eq!(decision.attempts, 1);
        assert_eq!(decision.solver.as_deref(), Some("acyclic-guarded"));
        assert!(!decision.degraded && !decision.probe_timed_out);
        assert!(controller.ctx().flow_solves() > 0);
        assert!(controller.ctx().bisection_iters() > 0);
        if EvalCtx::new().journal_enabled() {
            assert!(controller.ctx().rescans_skipped() > 0);
        }
    }

    #[test]
    fn incremental_repair_makes_identical_decisions_and_warm_starts_flows() {
        // Satellite proof for warm residual reuse: the same two-departure scenario run
        // with incremental mode on and off produces bit-identical decisions, swap
        // timelines and delivery reports — and the incremental controller demonstrably
        // warm-started flow solves instead of re-running Dinic from scratch.
        let churn = ChurnSchedule::new(vec![
            ChurnEvent {
                time: 4.0,
                node: 3,
                action: ChurnAction::Depart,
            },
            ChurnEvent {
                time: 12.0,
                node: 1,
                action: ChurnAction::Depart,
            },
        ]);
        let run = |incremental: bool| {
            let (instance, scheme, nominal, overlay) = solved_figure1();
            let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
            controller.set_incremental(incremental);
            let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
            (outcome, controller)
        };
        let (cold_outcome, cold) = run(false);
        let (warm_outcome, warm) = run(true);
        assert_eq!(cold.decisions(), warm.decisions());
        assert_eq!(cold_outcome, warm_outcome);
        assert!(warm_outcome.swaps.iter().any(|s| s.swapped));
        assert_eq!(
            cold.ctx().flow_solves(),
            warm.ctx().flow_solves(),
            "warm mode must not change which probes run"
        );
        assert_eq!(cold.ctx().bisection_iters(), warm.ctx().bisection_iters());
        assert_eq!(cold.ctx().flows_warm_started(), 0);
        assert!(
            warm.ctx().flows_warm_started() > 0,
            "repair re-probes must reuse warm residual states"
        );
    }

    #[test]
    fn second_departure_is_judged_against_the_deployed_repaired_overlay() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        // The load-bearing relay C3 departs first (repair #1); later the strongest open
        // node C1 departs too. The second decision must judge the *repaired* overlay —
        // which leans on C1 — not the long-replaced nominal one, and repair again.
        let churn = ChurnSchedule::new(vec![
            ChurnEvent {
                time: 4.0,
                node: 3,
                action: ChurnAction::Depart,
            },
            ChurnEvent {
                time: 12.0,
                node: 1,
                action: ChurnAction::Depart,
            },
        ]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        assert_eq!(controller.decisions().len(), 2);
        let second = &controller.decisions()[1];
        assert_eq!(second.departed, vec![1, 3]);
        assert!(
            second.repaired.is_some(),
            "the second departure cripples the deployed repaired overlay: {second:?}"
        );
        assert!(outcome.swaps.iter().all(|s| s.swapped));
        // Every survivor of both departures still completes on the twice-repaired
        // overlay.
        assert_eq!(outcome.survivors, vec![2, 4, 5]);
        for &node in &outcome.survivors {
            assert!(
                outcome.report.completion_time[node].is_some(),
                "survivor {node} starved"
            );
        }
    }

    #[test]
    fn repair_controller_restores_the_nominal_overlay_on_full_rejoin() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::new(vec![
            ChurnEvent {
                time: 4.0,
                node: 3,
                action: ChurnAction::Depart,
            },
            ChurnEvent {
                time: 12.0,
                node: 3,
                action: ChurnAction::Rejoin,
            },
        ]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        assert_eq!(outcome.swaps.len(), 2);
        // The rejoin decision re-solves the full survivor set, reproducing the nominal
        // throughput — and the residual it judged was the *deployed* (repaired)
        // overlay's, which starves the returning relay.
        let last = controller.decisions().last().unwrap();
        assert!(last.departed.is_empty());
        assert_eq!(last.repaired, Some(nominal));
        assert!(
            last.residual < 0.9 * nominal,
            "the rejoin must be judged against the deployed overlay, not assumed healthy"
        );
        assert!(outcome.report.all_completed());
    }

    #[test]
    fn harmless_departures_do_not_trigger_a_swap() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        // C5 relays almost nothing: the residual stays above a modest floor. Its later
        // rejoin must not trigger a swap either — the nominal overlay never left.
        let churn = ChurnSchedule::new(vec![
            ChurnEvent {
                time: 5.0,
                node: 5,
                action: ChurnAction::Depart,
            },
            ChurnEvent {
                time: 10.0,
                node: 5,
                action: ChurnAction::Rejoin,
            },
        ]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.5);
        let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        assert_eq!(outcome.swaps.len(), 2);
        assert!(outcome.swaps.iter().all(|s| !s.swapped));
        let departure = &controller.decisions()[0];
        assert!(departure.residual >= 0.5 * nominal);
        assert_eq!(departure.repaired, None);
        assert_eq!(departure.attempts, 0);
        // The rejoin found the nominal overlay serving everyone: no phantom repair.
        let rejoin = &controller.decisions()[1];
        assert!(rejoin.departed.is_empty());
        assert_eq!(rejoin.repaired, None);
        assert!(outcome.report.all_completed());
    }

    #[test]
    fn depart_rejoin_depart_merges_the_returning_relay_into_the_deployed_overlay() {
        // The ROADMAP item-5 hazard: a rejoin must be handled by merging the returning
        // node into the *currently deployed* overlay (probe → residual → re-solve),
        // not by restoring a remembered nominal overlay. The depart→rejoin→depart
        // trace exercises the full cycle: repair, rejoin-triggered re-solve, and a
        // second repair judged against what the rejoin actually deployed.
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::new(vec![
            ChurnEvent {
                time: 4.0,
                node: 3,
                action: ChurnAction::Depart,
            },
            ChurnEvent {
                time: 10.0,
                node: 3,
                action: ChurnAction::Rejoin,
            },
            ChurnEvent {
                time: 16.0,
                node: 3,
                action: ChurnAction::Depart,
            },
        ]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        let decisions = controller.decisions();
        assert_eq!(decisions.len(), 3);
        // Departure #1: repaired.
        assert!(decisions[0].repaired.is_some());
        // Rejoin: judged against the deployed (repaired) overlay, which starves the
        // returning relay — so the controller re-solved and reproduced nominal.
        assert!(decisions[1].departed.is_empty());
        assert!(decisions[1].residual < 0.9 * nominal);
        assert_eq!(decisions[1].repaired, Some(nominal));
        // Departure #2: judged against the overlay the rejoin deployed, repaired
        // again.
        assert_eq!(decisions[2].departed, vec![3]);
        assert!(decisions[2].repaired.is_some());
        assert!(outcome.swaps.iter().all(|s| s.swapped));
        assert_eq!(outcome.survivors, vec![1, 2, 4, 5]);
        for &node in &outcome.survivors {
            assert!(
                outcome.report.completion_time[node].is_some(),
                "survivor {node} starved"
            );
        }
    }

    #[test]
    fn retry_budget_absorbs_transient_solve_faults() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::departures_at(5.0, &[3]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        // Two injected solve failures: the primary's first two attempts die, the third
        // (its last retry) succeeds. No fallback engaged.
        FaultPlan::disabled()
            .with_solve_failures(vec![0, 1])
            .install(controller.ctx_mut());
        let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        let decision = &controller.decisions()[0];
        assert!(decision.repaired.is_some());
        assert_eq!(decision.attempts, 3);
        assert_eq!(decision.solver.as_deref(), Some("acyclic-guarded"));
        assert!(!decision.degraded);
        assert!(!controller.is_degraded());
        assert_eq!(controller.ctx().injected_faults().unwrap().fired(), 2);
        assert!(outcome.swaps[0].swapped);
        for &node in &outcome.survivors {
            assert!(outcome.report.completion_time[node].is_some());
        }
    }

    #[test]
    fn fallback_chain_engages_when_the_primary_exhausts_its_retries() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::departures_at(5.0, &[3]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        // Three injected solve failures kill every try of the primary; the chain walks
        // on and a fallback solver produces the plan.
        FaultPlan::disabled()
            .with_solve_failures(vec![0, 1, 2])
            .install(controller.ctx_mut());
        let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        let decision = &controller.decisions()[0];
        assert!(decision.repaired.is_some());
        assert!(decision.attempts > 3);
        let solver = decision.solver.as_deref().unwrap();
        assert_ne!(solver, "acyclic-guarded", "a fallback must have repaired");
        assert!(!decision.degraded);
        assert!(outcome.swaps[0].swapped);
        for &node in &outcome.survivors {
            assert!(outcome.report.completion_time[node].is_some());
        }
    }

    #[test]
    fn probe_timeouts_do_not_stall_the_pipeline() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::departures_at(5.0, &[3]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        FaultPlan::disabled()
            .with_probe_timeouts(vec![0])
            .install(controller.ctx_mut());
        let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        let decision = &controller.decisions()[0];
        assert!(decision.probe_timed_out);
        assert_eq!(decision.victim_tolerance, 1.0);
        // The residual check stayed authoritative: the repair still happened.
        assert!(decision.repaired.is_some());
        assert!(outcome.swaps[0].swapped);
        assert!(outcome.report.completion_time[1].is_some());
    }

    #[test]
    fn exhausted_repair_budget_degrades_to_the_last_good_overlay() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::departures_at(5.0, &[3]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        // Enough injected solve failures to exhaust the whole attempt budget across
        // the entire fallback chain: the controller must degrade, not panic or stall.
        FaultPlan::disabled()
            .with_solve_failures((0..2 * REPAIR_ATTEMPT_BUDGET as u64).collect())
            .install(controller.ctx_mut());
        let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        let decision = &controller.decisions()[0];
        assert_eq!(decision.repaired, None);
        assert_eq!(decision.attempts, REPAIR_ATTEMPT_BUDGET);
        assert!(decision.degraded);
        assert!(controller.is_degraded());
        // The session kept stepping on the last good (nominal) overlay: no swap, the
        // floor-tracked residual is surfaced, and delivery continued for the nodes the
        // overlay still reaches.
        assert!(!outcome.swaps[0].swapped);
        let floor = outcome.degraded_floor.expect("degraded floor surfaced");
        assert!((floor - decision.residual).abs() < 1e-12);
        assert!(outcome.goodput() > 0.0);
        assert_eq!(outcome.report.rounds_run, config().max_rounds);
    }

    #[test]
    fn checkpointed_adaptive_run_resumes_bit_identically() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::new(vec![
            ChurnEvent {
                time: 4.0,
                node: 3,
                action: ChurnAction::Depart,
            },
            ChurnEvent {
                time: 12.0,
                node: 3,
                action: ChurnAction::Rejoin,
            },
        ]);
        let mut reference_ctl =
            RepairController::new(instance.clone(), scheme.clone(), nominal, 0.9);
        let mut reference = AdaptiveRun::new(overlay.clone(), config(), churn.clone(), nominal);
        while !reference.step(&mut reference_ctl) {}
        let reference_outcome = reference.outcome(&reference_ctl);

        // Interrupted run: checkpoint after 30 rounds (the first repair has happened,
        // the rejoin has not), serialize through actual JSON text, drop everything,
        // resume and finish.
        let mut front_ctl = RepairController::new(instance, scheme, nominal, 0.9);
        let mut front = AdaptiveRun::new(overlay, config(), churn, nominal);
        for _ in 0..30 {
            front.step(&mut front_ctl);
        }
        assert_eq!(front.swaps().len(), 1, "the repair predates the checkpoint");
        let json = serde_json::to_string(&front.checkpoint(Some(&front_ctl))).unwrap();
        drop(front);
        drop(front_ctl);
        let checkpoint: RunCheckpoint = serde_json::from_str(&json).unwrap();
        assert!(checkpoint.has_controller());
        let (mut resumed, resumed_ctl) = AdaptiveRun::resume(checkpoint);
        let mut resumed_ctl = resumed_ctl.expect("controller-driven checkpoint");
        assert_eq!(resumed.session().rounds_run(), 30);
        while !resumed.step(&mut resumed_ctl) {}
        let resumed_outcome = resumed.outcome(&resumed_ctl);

        assert_eq!(resumed_outcome, reference_outcome);
        assert_eq!(resumed_ctl.decisions(), reference_ctl.decisions());
    }

    #[test]
    fn static_checkpoint_roundtrips_without_a_controller() {
        let (_, _, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::departures_at(5.0, &[3]);
        let mut reference = AdaptiveRun::new(overlay.clone(), config(), churn.clone(), nominal);
        let mut policy = StaticPolicy;
        while !reference.step(&mut policy) {}
        let reference_outcome = reference.outcome(&policy);

        let mut front = AdaptiveRun::new(overlay, config(), churn, nominal);
        for _ in 0..50 {
            front.step(&mut policy);
        }
        let checkpoint = front.checkpoint(None);
        let json = serde_json::to_string(&checkpoint).unwrap();
        let roundtripped: RunCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(roundtripped, checkpoint);
        assert!(!roundtripped.has_controller());
        let (mut resumed, none_ctl) = AdaptiveRun::resume(roundtripped);
        assert!(none_ctl.is_none());
        while !resumed.step(&mut policy) {}
        assert_eq!(resumed.outcome(&policy), reference_outcome);
    }

    #[test]
    fn a_wedged_overlay_stops_progress_and_force_repair_recovers_it() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        let mut run = AdaptiveRun::new(overlay, config(), ChurnSchedule::empty(), nominal);
        assert!(
            !run.last_round_progressed(),
            "no step has run yet — the progress flag must start false"
        );
        // Early rounds can starve distant receivers while the first chunks propagate
        // down the overlay; within a few rounds every active receiver gains chunks
        // and the progress flag turns true.
        let mut progressed = false;
        for _ in 0..20 {
            run.step(&mut controller);
            if run.last_round_progressed() {
                progressed = true;
                break;
            }
        }
        assert!(
            progressed,
            "a healthy session must progress within a few rounds"
        );
        // Wedge the session: an edgeless overlay delivers nothing, and because no
        // membership changed the controller is never consulted.
        let n = run.session().overlay().num_nodes();
        run.replace_overlay(Overlay::new(n, Vec::new()));
        for _ in 0..5 {
            run.step(&mut controller);
            assert!(
                !run.last_round_progressed(),
                "an edgeless overlay cannot deliver"
            );
        }
        assert_eq!(run.swaps().len(), 0, "replace_overlay records no swap");
        // The watchdog escalation: a forced decision sees zero departed nodes, judges
        // the *deployed* (healthy) scheme, finds its residual at the floor and keeps
        // it — but the controller was never told about the wedge, so the forced
        // attempt cannot rescue the session. That terminal shape (forced repair does
        // not swap, progress stays absent) is exactly what Stuck quarantine catches.
        let swapped = run.force_repair(&mut controller);
        assert!(!swapped);
        assert_eq!(
            run.swaps().len(),
            1,
            "the forced decision is on the timeline"
        );
        run.step(&mut controller);
        assert!(!run.last_round_progressed());
    }

    #[test]
    fn force_repair_records_its_decision_and_noops_once_finished() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        let churn = ChurnSchedule::departures_at(2.0, &[3]);
        let mut run = AdaptiveRun::new(overlay, config(), churn, nominal);
        for _ in 0..30 {
            run.step(&mut controller);
        }
        let swaps_before = run.swaps().len();
        let decisions_before = controller.decisions().len();
        assert!(swaps_before >= 1, "the departure triggered a decision");
        // A forced decision goes through the same pipeline as a churn-triggered one:
        // it lands on the swap timeline and in the controller's decision log, even
        // when the controller keeps the deployed overlay.
        run.force_repair(&mut controller);
        assert_eq!(run.swaps().len(), swaps_before + 1);
        assert_eq!(controller.decisions().len(), decisions_before + 1);
        // Run to completion; forcing a finished run must change nothing.
        while !run.step(&mut controller) {}
        let swaps_done = run.swaps().len();
        assert!(!run.force_repair(&mut controller));
        assert_eq!(run.swaps().len(), swaps_done);
    }

    #[test]
    fn fault_storm_acceptance_repaired_session_survives_where_static_starves() {
        // The PR's acceptance storm: >= 3 injected solver failures, one injected probe
        // timeout and one armed flow-worker panic, against an early load-bearing
        // departure. The repaired session must complete without panicking and deliver
        // at least half the nominal goodput; the static session delivers under 5%.
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::departures_at(2.0, &[3]);
        let static_run = run_adaptive(
            overlay.clone(),
            config(),
            &churn,
            &mut StaticPolicy,
            nominal,
        );
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        // Pooled evaluation so the armed worker panic actually lands in a pool worker.
        controller.set_parallelism(2);
        let plan = FaultPlan::disabled()
            .with_solve_failures(vec![0, 1, 2])
            .with_probe_timeouts(vec![0])
            .with_worker_panics(1);
        let contained_before = bmp_flow::FlowPool::global().panics_contained();
        plan.install(controller.ctx_mut());
        let repaired = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        // Every scheduled solver/probe fault actually fired.
        assert_eq!(controller.ctx().injected_faults().unwrap().fired(), 4);
        // The armed worker panic may not have landed during the run: ticket pickup
        // races the submitting thread, which drains shares too and never panics, and
        // on the tiny residual graph the submitter usually wins. Drive pooled
        // evaluations over a deliberately wide star — draining its sink order takes
        // far longer than a worker wake-up — until a worker claims the token, then
        // prove containment: the poisoned evaluation is recomputed sequentially, so
        // the value stays exact.
        let wide_sinks: Vec<usize> = (1..1024).collect();
        let star = |edges: &mut Vec<(usize, usize, f64)>| {
            edges.extend((1..1024).map(|to| (0, to, 1.0)));
        };
        let wide_expected = EvalCtx::new().min_max_flow_with(1024, 0, &wide_sinks, star);
        let mut attempts = 0;
        while bmp_flow::FlowPool::global().panics_contained() == contained_before {
            attempts += 1;
            assert!(attempts <= 500, "the armed worker panic never landed");
            let pooled = controller
                .ctx_mut()
                .min_max_flow_with(1024, 0, &wide_sinks, star);
            assert_eq!(pooled, wide_expected, "containment must stay bit-identical");
        }
        // The residual the repair pipeline actually evaluates stays exact too.
        let pooled = controller.deployed_residual(&[3]);
        let expected = EvalCtx::new().min_max_flow_with(
            controller.instance.num_nodes(),
            0,
            &[1, 2, 4, 5],
            |edges| {
                edges.extend(
                    controller
                        .deployed
                        .edges()
                        .into_iter()
                        .filter(|&(from, to, _)| from != 3 && to != 3),
                );
            },
        );
        assert_eq!(pooled, expected, "residual must stay bit-identical");
        assert_eq!(
            bmp_flow::disarm_worker_panics(),
            0,
            "the landed panic consumed its token"
        );
        assert!(!controller.is_degraded());
        assert!(repaired.swaps[0].swapped);
        assert!(
            repaired.goodput_vs_nominal() >= 0.5,
            "repaired goodput {} of nominal",
            repaired.goodput_vs_nominal()
        );
        assert!(
            static_run.goodput_vs_nominal() < 0.05,
            "static goodput {} of nominal",
            static_run.goodput_vs_nominal()
        );
        for &node in &repaired.survivors {
            assert!(repaired.report.completion_time[node].is_some());
        }
    }
}
