//! The adaptation layer: controllers that re-solve and hot-swap overlays on churn.
//!
//! This module closes the loop between the solver stack of `bmp-core` and the data plane
//! of this crate. A [`Session`] steps the broadcast round by round; [`run_adaptive`]
//! watches the churn schedule and, whenever the departed set changes, asks an
//! [`AdaptationPolicy`] what to do. The policy either keeps the current overlay (the
//! paper's static control plane — [`StaticPolicy`]) or returns a freshly solved overlay
//! for the surviving platform, which the driver hot-swaps into the running session
//! without losing already-delivered chunks.
//!
//! ```text
//!      churn event                  AdaptationPolicy::adapt
//!   ┌──────────────┐   departed   ┌─────────────────────────┐   Some(overlay)
//!   │ ChurnSchedule ├────────────▶│ probe → residual → repair├───────────────┐
//!   └──────┬───────┘              └─────────────────────────┘               ▼
//!          │ set_alive                      ▲                        Session::hot_swap
//!          ▼                                │ EvalCtx (journal +              │
//!   ┌──────────────┐  step() / RoundStats   │ per-call arena, pool)           │
//!   │   Session    │◀───────────────────────┴─────────────────────────────────┘
//!   └──────────────┘   possession, credit and RNG survive the swap
//! ```
//!
//! [`RepairController`] is the reference policy. On every membership change it
//!
//! 1. probes how sensitive the *currently deployed* overlay is to the newest victim
//!    ([`bmp_core::churn::degradation_tolerance`] — the *copy-on-probe* exemplar, so the
//!    bisection rides the scheme's dirty-edge journal:
//!    [`bmp_core::solver::Telemetry::rescans_skipped`] grows),
//! 2. evaluates the residual throughput of the *currently deployed* overlay (the
//!    nominal one before any swap, the latest repaired one after) restricted to the
//!    survivors — an [`EvalCtx::min_max_flow_with`] evaluation on the context's
//!    per-call explicit arena that can fan out over the persistent flow pool,
//! 3. and only when the residual misses the configured floor re-solves the surviving
//!    platform ([`bmp_core::churn::repair`]) and returns the repaired overlay translated
//!    back to the original node ids
//!    ([`bmp_core::churn::RepairOutcome::edges_in_original_ids`]).
//!
//! The controller owns one long-lived [`EvalCtx`] for all of this, so arenas and flow
//! workspaces stay warm across churn events; its [`RepairController::set_parallelism`]
//! forwards to the context for pooled evaluation of large survivor overlays.

use crate::engine::SimConfig;
use crate::events::{ChurnAction, ChurnSchedule};
use crate::metrics::SimReport;
use crate::overlay::Overlay;
use crate::session::Session;
use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::churn::{degradation_tolerance, repair};
use bmp_core::scheme::BroadcastScheme;
use bmp_core::solver::EvalCtx;
use bmp_platform::{Instance, NodeId};

/// What a policy hands back when it wants the running overlay replaced.
#[derive(Debug, Clone)]
pub struct AdaptDecision {
    /// The replacement overlay, in the session's (original) node id space.
    pub overlay: Overlay,
    /// Nominal throughput the replacement was solved for (diagnostics).
    pub repaired_nominal: f64,
}

/// A controller consulted by [`run_adaptive`] whenever the departed set changes.
///
/// The contract: `adapt` receives the complete current set of departed receivers (not a
/// delta) and the simulated time, and returns `Some` replacement overlay — over the
/// *same* node id space as the running session — to trigger a hot-swap, or `None` to
/// keep the current overlay. The driver calls it once per membership change, before the
/// first round at which the change is effective; implementations are free to keep state
/// (solvers, evaluation contexts, decision logs) across calls.
pub trait AdaptationPolicy {
    /// Label used in reports and CSV output.
    fn label(&self) -> &'static str;

    /// Reacts to the current departed set; `Some` means hot-swap the returned overlay.
    fn adapt(&mut self, departed: &[NodeId], time: f64) -> Option<AdaptDecision>;
}

/// The paper's baseline: the overlay is computed once and never adapted.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPolicy;

impl AdaptationPolicy for StaticPolicy {
    fn label(&self) -> &'static str {
        "static"
    }

    fn adapt(&mut self, _departed: &[NodeId], _time: f64) -> Option<AdaptDecision> {
        None
    }
}

/// One `adapt` call of a [`RepairController`], for telemetry and CSV output.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerDecision {
    /// Simulated time of the membership change.
    pub time: f64,
    /// The departed receivers at that time.
    pub departed: Vec<NodeId>,
    /// Journal-riding degradation tolerance of the newest victim, probed on the overlay
    /// that was deployed at decision time (1.0 when the departed set was empty — a pure
    /// rejoin).
    pub victim_tolerance: f64,
    /// Residual throughput of the overlay that was *deployed* at decision time (the
    /// nominal one before any swap, the latest repaired one after), restricted to the
    /// survivors.
    pub residual: f64,
    /// Nominal throughput of the replacement overlay, when one was issued.
    pub repaired: Option<f64>,
}

/// The reference adaptation policy: incremental re-solve of the surviving platform (see
/// the module docs for the probe → residual → repair pipeline).
#[derive(Debug)]
pub struct RepairController {
    instance: Instance,
    scheme: BroadcastScheme,
    nominal: f64,
    floor: f64,
    solver: AcyclicGuardedSolver,
    ctx: EvalCtx,
    decisions: Vec<ControllerDecision>,
    /// The overlay currently carrying the broadcast, as a scheme over the *original*
    /// instance (the nominal scheme until the first swap). Both controller probes judge
    /// this, not the long-replaced nominal overlay — a second departure that cripples a
    /// repaired overlay would otherwise be judged against the wrong graph.
    deployed: BroadcastScheme,
    /// The departed set of the previous `adapt` call, for identifying the nodes that
    /// changed in this one.
    previous_departed: Vec<NodeId>,
    /// Whether the deployed overlay is still the nominal one (no repair issued, or the
    /// last full rejoin restored it). A full rejoin only triggers a swap when this is
    /// `false` — restoring an overlay that never left would report a phantom repair.
    nominal_deployed: bool,
}

impl RepairController {
    /// Creates a controller for a session broadcasting `scheme` (nominal throughput
    /// `nominal`) over `instance`. The controller repairs as soon as the frozen
    /// overlay's residual throughput drops below `floor_fraction × nominal`.
    ///
    /// # Panics
    ///
    /// Panics if `floor_fraction` is outside `(0, 1]` or `nominal` is not positive.
    #[must_use]
    pub fn new(
        instance: Instance,
        scheme: BroadcastScheme,
        nominal: f64,
        floor_fraction: f64,
    ) -> Self {
        assert!(
            floor_fraction > 0.0 && floor_fraction <= 1.0,
            "floor fraction must lie in (0, 1]"
        );
        assert!(nominal > 0.0, "nominal throughput must be positive");
        RepairController {
            floor: floor_fraction * nominal,
            deployed: scheme.clone(),
            instance,
            scheme,
            nominal,
            solver: AcyclicGuardedSolver::default(),
            ctx: EvalCtx::new(),
            decisions: Vec::new(),
            previous_departed: Vec::new(),
            nominal_deployed: true,
        }
    }

    /// Residual throughput of the *currently deployed* overlay restricted to the
    /// survivors of `departed` (per-call explicit arena, pooled at the configured
    /// parallelism).
    fn deployed_residual(&mut self, departed: &[NodeId]) -> f64 {
        let n = self.instance.num_nodes();
        let mut alive = vec![true; n];
        for &node in departed {
            if node < n {
                alive[node] = false;
            }
        }
        let survivors: Vec<NodeId> = (1..n).filter(|&node| alive[node]).collect();
        let deployed = &self.deployed;
        let residual = self.ctx.min_max_flow_with(n, 0, &survivors, |edges| {
            edges.extend(
                deployed
                    .edges()
                    .into_iter()
                    .filter(|&(from, to, _)| alive[from] && alive[to]),
            );
        });
        if residual.is_finite() {
            residual
        } else {
            0.0
        }
    }

    /// Forwards to [`EvalCtx::set_parallelism`]: residual probes of large survivor
    /// overlays fan out over the persistent flow worker pool (`0` = auto heuristic).
    pub fn set_parallelism(&mut self, threads: usize) {
        self.ctx.set_parallelism(threads);
    }

    /// The controller's evaluation context (telemetry: flow solves, bisection probes,
    /// journal fast-path counters).
    #[must_use]
    pub fn ctx(&self) -> &EvalCtx {
        &self.ctx
    }

    /// Every `adapt` call so far, oldest first.
    #[must_use]
    pub fn decisions(&self) -> &[ControllerDecision] {
        &self.decisions
    }
}

impl AdaptationPolicy for RepairController {
    fn label(&self) -> &'static str {
        "repair"
    }

    fn adapt(&mut self, departed: &[NodeId], time: f64) -> Option<AdaptDecision> {
        if departed.is_empty() {
            // Every earlier departure rejoined: restore the nominal overlay — but only
            // when a repair actually replaced it; otherwise there is nothing to restore
            // and a swap would be reported for a repair that never happened.
            self.previous_departed.clear();
            let decision = if self.nominal_deployed {
                None
            } else {
                self.deployed = self.scheme.clone();
                self.nominal_deployed = true;
                Some(AdaptDecision {
                    overlay: Overlay::from_scheme(&self.scheme),
                    repaired_nominal: self.nominal,
                })
            };
            self.decisions.push(ControllerDecision {
                time,
                departed: Vec::new(),
                victim_tolerance: 1.0,
                residual: self.nominal,
                repaired: decision.as_ref().map(|d| d.repaired_nominal),
            });
            return decision;
        }
        // 1. Sensitivity probe of the newest victim (the node that departed since the
        //    previous call; an arbitrary departed node when only rejoins happened): a
        //    dichotomic search whose re-evaluations ride the scheme's dirty-edge
        //    journal (copy-on-probe).
        let victim = departed
            .iter()
            .copied()
            .find(|node| !self.previous_departed.contains(node))
            .unwrap_or_else(|| *departed.last().expect("checked non-empty"));
        self.previous_departed = departed.to_vec();
        let victim_tolerance =
            degradation_tolerance(&self.deployed, victim, self.floor, &mut self.ctx);
        // 2. Authoritative check: residual throughput of the overlay the session is
        //    *currently* running — the nominal one before any swap, the most recently
        //    repaired one after (per-call explicit arena; pooled at the configured
        //    parallelism).
        let residual = self.deployed_residual(departed);
        let decision = if residual + 1e-12 >= self.floor {
            None // the deployed overlay still meets the floor: no swap needed
        } else {
            // 3. Re-solve the surviving platform and translate back to original ids.
            repair(&self.instance, departed, &self.solver).map(|outcome| {
                let edges = outcome.edges_in_original_ids();
                let overlay = Overlay::new(self.instance.num_nodes(), edges.clone());
                // Rebuild the deployed scheme over the original instance so the next
                // decision's probes judge what the session is actually running.
                let mut deployed = BroadcastScheme::new(self.instance.clone());
                for &(from, to, rate) in &edges {
                    deployed.set_rate(from, to, rate);
                }
                self.deployed = deployed;
                self.nominal_deployed = false;
                AdaptDecision {
                    overlay,
                    repaired_nominal: outcome.solution.throughput,
                }
            })
        };
        self.decisions.push(ControllerDecision {
            time,
            departed: departed.to_vec(),
            victim_tolerance,
            residual,
            repaired: decision.as_ref().map(|d| d.repaired_nominal),
        });
        decision
    }
}

/// One membership change as seen by the driver: whether a swap happened and when the
/// data plane recovered from it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapEvent {
    /// Simulated time at which the membership change took effect.
    pub time: f64,
    /// Whether the policy issued a replacement overlay.
    pub swapped: bool,
    /// Nominal throughput of the replacement, when one was issued.
    pub repaired_nominal: Option<f64>,
    /// First time after the change at which no active receiver starved (every alive,
    /// incomplete receiver gained at least one chunk in the round) — the post-churn
    /// recovery instant. `None` when the run ended still starved. The metric tracks
    /// whether anyone *present* is starving: a later membership change that removes the
    /// starved receivers themselves also counts as recovery, because the broadcast is
    /// healthy again for everyone who remains.
    pub recovered_at: Option<f64>,
}

/// Outcome of one adaptive run: the delivery report plus the swap/recovery timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The per-node delivery report.
    pub report: SimReport,
    /// One entry per membership change, in order.
    pub swaps: Vec<SwapEvent>,
    /// Receivers alive at the end of the run — the session's final churn state, which
    /// can differ from the schedule's final state when the broadcast completes before
    /// later events fire (those events were never simulated and must not skew the
    /// goodput denominator).
    pub survivors: Vec<NodeId>,
    /// Nominal throughput of the initial overlay (the comparison baseline).
    pub nominal: f64,
}

impl SessionOutcome {
    /// Average delivered data rate per surviving receiver ([`SimReport::delivered_goodput`]).
    #[must_use]
    pub fn goodput(&self) -> f64 {
        self.report.delivered_goodput(&self.survivors)
    }

    /// Delivered goodput as a fraction of the nominal throughput — the headline metric
    /// of the static-vs-repaired comparison.
    #[must_use]
    pub fn goodput_vs_nominal(&self) -> f64 {
        if self.nominal <= 0.0 {
            0.0
        } else {
            self.goodput() / self.nominal
        }
    }

    /// Time from the last hot-swap to its recovery instant (`None` without a swap, or
    /// when the run ended before recovering).
    #[must_use]
    pub fn recovery_time(&self) -> Option<f64> {
        self.swaps
            .iter()
            .rev()
            .find(|s| s.swapped)
            .and_then(|s| s.recovered_at.map(|at| at - s.time))
    }
}

/// Runs a closed-loop session: steps the data plane over `overlay`, applies `churn`, and
/// lets `policy` hot-swap replacement overlays on every membership change. `nominal` is
/// the initial overlay's solved throughput (the goodput baseline).
///
/// Determinism: the session RNG is seeded once from [`SimConfig::seed`]; with a
/// deterministic policy (both [`StaticPolicy`] and [`RepairController`] are), the same
/// seed, schedule and configuration replay to a bit-identical [`SessionOutcome`].
///
/// # Panics
///
/// Panics if a churn event targets a node outside the overlay, or the policy returns an
/// overlay over a different node id space.
#[must_use]
pub fn run_adaptive(
    overlay: Overlay,
    config: SimConfig,
    churn: &ChurnSchedule,
    policy: &mut dyn AdaptationPolicy,
    nominal: f64,
) -> SessionOutcome {
    let n = overlay.num_nodes();
    for event in churn.events() {
        assert!(
            event.node < n,
            "churn event targets node {} but the overlay has {n} nodes",
            event.node
        );
    }
    let mut session = Session::new(overlay, config);
    let mut next_event = 0usize;
    let mut swaps: Vec<SwapEvent> = Vec::new();
    let mut awaiting_recovery: Vec<usize> = Vec::new();
    for round in 0..config.max_rounds {
        let time_start = round as f64 * config.round_duration;
        let mut membership_changed = false;
        while next_event < churn.events().len() && churn.events()[next_event].time <= time_start {
            let event = churn.events()[next_event];
            session.set_alive(event.node, matches!(event.action, ChurnAction::Rejoin));
            membership_changed = true;
            next_event += 1;
        }
        if membership_changed {
            let departed: Vec<NodeId> = (1..n).filter(|&v| !session.is_alive(v)).collect();
            let decision = policy.adapt(&departed, time_start);
            let mut record = SwapEvent {
                time: time_start,
                swapped: false,
                repaired_nominal: None,
                recovered_at: None,
            };
            if let Some(decision) = decision {
                record.swapped = true;
                record.repaired_nominal = Some(decision.repaired_nominal);
                session.hot_swap(decision.overlay);
            }
            swaps.push(record);
            awaiting_recovery.push(swaps.len() - 1);
        }
        let stats = session.step();
        if stats.all_active_progressed && !awaiting_recovery.is_empty() {
            for &index in &awaiting_recovery {
                swaps[index].recovered_at = Some(session.time());
            }
            awaiting_recovery.clear();
        }
        if session.is_complete() {
            break;
        }
    }
    SessionOutcome {
        survivors: (1..n).filter(|&node| session.is_alive(node)).collect(),
        report: session.report(),
        swaps,
        nominal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
    use bmp_platform::paper::figure1;

    fn solved_figure1() -> (Instance, BroadcastScheme, f64, Overlay) {
        let instance = figure1();
        let solution = AcyclicGuardedSolver::default().solve(&instance);
        let overlay = Overlay::from_scheme(&solution.scheme);
        (instance, solution.scheme, solution.throughput, overlay)
    }

    fn config() -> SimConfig {
        SimConfig {
            num_chunks: 200,
            chunk_size: 0.5,
            round_duration: 0.25,
            max_rounds: 4_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn static_policy_never_swaps_and_starves_on_a_relay_departure() {
        let (_, _, nominal, overlay) = solved_figure1();
        // C3 is the load-bearing guarded relay of the Figure 1 solution.
        let churn = ChurnSchedule::departures_at(5.0, &[3]);
        let mut policy = StaticPolicy;
        let outcome = run_adaptive(overlay, config(), &churn, &mut policy, nominal);
        assert_eq!(outcome.swaps.len(), 1);
        assert!(!outcome.swaps[0].swapped);
        assert!(outcome.goodput_vs_nominal() < 1.0);
        assert_eq!(outcome.survivors, vec![1, 2, 4, 5]);
    }

    #[test]
    fn repair_controller_swaps_on_a_load_bearing_departure_and_beats_static() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::departures_at(5.0, &[3]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        let repaired = run_adaptive(overlay.clone(), config(), &churn, &mut controller, nominal);
        let static_run = run_adaptive(overlay, config(), &churn, &mut StaticPolicy, nominal);
        assert_eq!(repaired.swaps.len(), 1);
        assert!(
            repaired.swaps[0].swapped,
            "relay departure must trigger repair"
        );
        let repaired_nominal = repaired.swaps[0].repaired_nominal.unwrap();
        assert!(repaired_nominal > 0.0);
        // Same seed, same trace: the repaired session delivers strictly more.
        assert!(
            repaired.goodput() > static_run.goodput(),
            "repaired {} vs static {}",
            repaired.goodput(),
            static_run.goodput()
        );
        assert!(repaired.recovery_time().is_some());
        // The controller's decision pipeline ran: degradation probes (bisection) and
        // residual evaluations through its one long-lived context — and the re-probes
        // rode the dirty-edge journal (unless the CI kill switch disabled it).
        let decision = &controller.decisions()[0];
        assert_eq!(decision.departed, vec![3]);
        assert!(decision.residual < 0.9 * nominal);
        assert!(controller.ctx().flow_solves() > 0);
        assert!(controller.ctx().bisection_iters() > 0);
        if EvalCtx::new().journal_enabled() {
            assert!(controller.ctx().rescans_skipped() > 0);
        }
    }

    #[test]
    fn second_departure_is_judged_against_the_deployed_repaired_overlay() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        // The load-bearing relay C3 departs first (repair #1); later the strongest open
        // node C1 departs too. The second decision must judge the *repaired* overlay —
        // which leans on C1 — not the long-replaced nominal one, and repair again.
        let churn = ChurnSchedule::new(vec![
            crate::events::ChurnEvent {
                time: 4.0,
                node: 3,
                action: ChurnAction::Depart,
            },
            crate::events::ChurnEvent {
                time: 12.0,
                node: 1,
                action: ChurnAction::Depart,
            },
        ]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        assert_eq!(controller.decisions().len(), 2);
        let second = &controller.decisions()[1];
        assert_eq!(second.departed, vec![1, 3]);
        assert!(
            second.repaired.is_some(),
            "the second departure cripples the deployed repaired overlay: {second:?}"
        );
        assert!(outcome.swaps.iter().all(|s| s.swapped));
        // Every survivor of both departures still completes on the twice-repaired
        // overlay.
        assert_eq!(outcome.survivors, vec![2, 4, 5]);
        for &node in &outcome.survivors {
            assert!(
                outcome.report.completion_time[node].is_some(),
                "survivor {node} starved"
            );
        }
    }

    #[test]
    fn repair_controller_restores_the_nominal_overlay_on_full_rejoin() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        let churn = ChurnSchedule::new(vec![
            crate::events::ChurnEvent {
                time: 4.0,
                node: 3,
                action: ChurnAction::Depart,
            },
            crate::events::ChurnEvent {
                time: 12.0,
                node: 3,
                action: ChurnAction::Rejoin,
            },
        ]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.9);
        let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        assert_eq!(outcome.swaps.len(), 2);
        // The rejoin decision restores the nominal overlay.
        let last = controller.decisions().last().unwrap();
        assert!(last.departed.is_empty());
        assert_eq!(last.repaired, Some(nominal));
        assert!(outcome.report.all_completed());
    }

    #[test]
    fn harmless_departures_do_not_trigger_a_swap() {
        let (instance, scheme, nominal, overlay) = solved_figure1();
        // C5 relays almost nothing: the residual stays above a modest floor. Its later
        // rejoin must not trigger a swap either — the nominal overlay never left.
        let churn = ChurnSchedule::new(vec![
            crate::events::ChurnEvent {
                time: 5.0,
                node: 5,
                action: ChurnAction::Depart,
            },
            crate::events::ChurnEvent {
                time: 10.0,
                node: 5,
                action: ChurnAction::Rejoin,
            },
        ]);
        let mut controller = RepairController::new(instance, scheme, nominal, 0.5);
        let outcome = run_adaptive(overlay, config(), &churn, &mut controller, nominal);
        assert_eq!(outcome.swaps.len(), 2);
        assert!(outcome.swaps.iter().all(|s| !s.swapped));
        let departure = &controller.decisions()[0];
        assert!(departure.residual >= 0.5 * nominal);
        assert_eq!(departure.repaired, None);
        // The full rejoin found the nominal overlay still deployed: no phantom repair.
        let rejoin = &controller.decisions()[1];
        assert!(rejoin.departed.is_empty());
        assert_eq!(rejoin.repaired, None);
        assert!(outcome.report.all_completed());
    }
}
