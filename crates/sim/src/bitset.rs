//! Word-packed chunk-possession bitsets: the data-plane state of a streaming session.
//!
//! Every node's "which chunks do I hold" set used to be a `Vec<bool>`; a chunk-selection
//! scan over it ([`crate::policy::ChunkPolicy::pick`]) touched one byte per chunk, per
//! edge, per round — the hottest loop of the whole simulator. A [`ChunkBitset`] packs the
//! set into `u64` words so the *useful-chunk* predicate (`sender holds ∧ receiver lacks`)
//! is evaluated 64 chunks at a time (`sender_word & !receiver_word`), and entire useless
//! words are skipped with one comparison. The policy scans become O(chunks / 64) plus one
//! bit scan in the word that hits, instead of O(chunks).
//!
//! The invariant maintained throughout: bits at positions `>= num_chunks` are always
//! zero, so word-level operations never report phantom chunks.

/// A fixed-capacity set of chunk indices, packed 64 per word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkBitset {
    num_chunks: usize,
    words: Vec<u64>,
}

impl ChunkBitset {
    /// Creates an empty set with capacity for `num_chunks` chunks.
    #[must_use]
    pub fn new(num_chunks: usize) -> Self {
        ChunkBitset {
            num_chunks,
            words: vec![0; num_chunks.div_ceil(64)],
        }
    }

    /// Builds a set from a boolean possession vector (test and migration helper).
    #[must_use]
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut set = ChunkBitset::new(bools.len());
        for (chunk, &held) in bools.iter().enumerate() {
            if held {
                set.insert(chunk);
            }
        }
        set
    }

    /// Capacity of the set (the number of chunks of the message).
    #[must_use]
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// The raw packed words, low chunk indices first — the checkpoint representation.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a set from words captured with [`ChunkBitset::words`]. Tail bits beyond
    /// `num_chunks` are cleared, so a tampered serialized form cannot violate the
    /// phantom-chunk invariant.
    ///
    /// # Panics
    ///
    /// Panics if `words` has the wrong length for `num_chunks`.
    #[must_use]
    pub fn from_words(num_chunks: usize, words: Vec<u64>) -> Self {
        assert_eq!(
            words.len(),
            num_chunks.div_ceil(64),
            "word count does not match the chunk capacity"
        );
        let mut set = ChunkBitset { num_chunks, words };
        set.mask_tail();
        set
    }

    /// Whether `chunk` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `chunk >= num_chunks`.
    #[must_use]
    pub fn contains(&self, chunk: usize) -> bool {
        assert!(chunk < self.num_chunks, "chunk {chunk} out of range");
        self.words[chunk / 64] & (1 << (chunk % 64)) != 0
    }

    /// Inserts `chunk`; returns `true` when it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `chunk >= num_chunks`.
    pub fn insert(&mut self, chunk: usize) -> bool {
        assert!(chunk < self.num_chunks, "chunk {chunk} out of range");
        let word = &mut self.words[chunk / 64];
        let mask = 1 << (chunk % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Inserts every chunk (the file-broadcast source holds the whole message).
    pub fn fill(&mut self) {
        for word in &mut self.words {
            *word = u64::MAX;
        }
        self.mask_tail();
    }

    /// Number of chunks in the set.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Zeroes the bits at positions `>= num_chunks` of the last word.
    fn mask_tail(&mut self) {
        let tail = self.num_chunks % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The lowest-index chunk in `self` but not in `other` (a *useful* chunk for a
    /// receiver whose possession set is `other`), or `None`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities.
    #[must_use]
    pub fn first_useful(&self, other: &ChunkBitset) -> Option<usize> {
        self.assert_same_capacity(other);
        for (index, (&mine, &theirs)) in self.words.iter().zip(&other.words).enumerate() {
            let useful = mine & !theirs;
            if useful != 0 {
                return Some(index * 64 + useful.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The highest-index useful chunk, or `None`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities.
    #[must_use]
    pub fn last_useful(&self, other: &ChunkBitset) -> Option<usize> {
        self.assert_same_capacity(other);
        for (index, (&mine, &theirs)) in self.words.iter().zip(&other.words).enumerate().rev() {
            let useful = mine & !theirs;
            if useful != 0 {
                return Some(index * 64 + 63 - useful.leading_zeros() as usize);
            }
        }
        None
    }

    /// The lowest-index useful chunk at position `>= start`, wrapping around to the start
    /// of the set when none exists above `start`. Equivalent in distribution to the
    /// random-start circular scan of the boolean data plane when `start` is uniform.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities or `start >= num_chunks`.
    #[must_use]
    pub fn circular_useful(&self, other: &ChunkBitset, start: usize) -> Option<usize> {
        self.assert_same_capacity(other);
        assert!(start < self.num_chunks, "start {start} out of range");
        let first_word = start / 64;
        // Masked scan of the word containing `start`, then whole words above it.
        let above = self.words[first_word] & !other.words[first_word] & (u64::MAX << (start % 64));
        if above != 0 {
            return Some(first_word * 64 + above.trailing_zeros() as usize);
        }
        for index in first_word + 1..self.words.len() {
            let useful = self.words[index] & !other.words[index];
            if useful != 0 {
                return Some(index * 64 + useful.trailing_zeros() as usize);
            }
        }
        // Wrap: the first useful chunk anywhere is necessarily below `start` now.
        self.first_useful(other)
    }

    /// The useful chunk with the smallest `(replication, index)` key — the rarest-first
    /// choice. `replication` must cover every chunk index.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities.
    #[must_use]
    pub fn rarest_useful(&self, other: &ChunkBitset, replication: &[usize]) -> Option<usize> {
        self.assert_same_capacity(other);
        let mut best: Option<(usize, usize)> = None;
        for (index, (&mine, &theirs)) in self.words.iter().zip(&other.words).enumerate() {
            let mut useful = mine & !theirs;
            while useful != 0 {
                let chunk = index * 64 + useful.trailing_zeros() as usize;
                useful &= useful - 1;
                let key = (replication[chunk], chunk);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, chunk)| chunk)
    }

    fn assert_same_capacity(&self, other: &ChunkBitset) {
        assert_eq!(
            self.num_chunks, other.num_chunks,
            "possession sets of different capacities"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut set = ChunkBitset::new(130);
        assert_eq!(set.count(), 0);
        assert!(set.insert(0));
        assert!(set.insert(64));
        assert!(set.insert(129));
        assert!(!set.insert(129), "second insert is not fresh");
        assert_eq!(set.count(), 3);
        assert!(set.contains(0) && set.contains(64) && set.contains(129));
        assert!(!set.contains(1) && !set.contains(128));
    }

    #[test]
    fn fill_respects_capacity() {
        let mut set = ChunkBitset::new(70);
        set.fill();
        assert_eq!(set.count(), 70);
        assert!(set.contains(69));
    }

    #[test]
    fn from_bools_roundtrip() {
        let bools: Vec<bool> = (0..100).map(|c| c % 3 == 0).collect();
        let set = ChunkBitset::from_bools(&bools);
        for (chunk, &held) in bools.iter().enumerate() {
            assert_eq!(set.contains(chunk), held, "chunk {chunk}");
        }
        assert_eq!(set.count(), bools.iter().filter(|&&b| b).count());
    }

    #[test]
    fn useful_scans_match_a_linear_reference() {
        // Crosses word boundaries: sender holds multiples of 7, receiver multiples of 3.
        let n = 200;
        let sender = ChunkBitset::from_bools(&(0..n).map(|c| c % 7 == 0).collect::<Vec<_>>());
        let receiver = ChunkBitset::from_bools(&(0..n).map(|c| c % 3 == 0).collect::<Vec<_>>());
        let useful: Vec<usize> = (0..n).filter(|&c| c % 7 == 0 && c % 3 != 0).collect();
        assert_eq!(sender.first_useful(&receiver), useful.first().copied());
        assert_eq!(sender.last_useful(&receiver), useful.last().copied());
        for start in 0..n {
            let expected = useful
                .iter()
                .find(|&&c| c >= start)
                .or_else(|| useful.first())
                .copied();
            assert_eq!(
                sender.circular_useful(&receiver, start),
                expected,
                "start {start}"
            );
        }
    }

    #[test]
    fn no_useful_chunk_is_none_everywhere() {
        let sender = ChunkBitset::from_bools(&[true, false, true, false]);
        let receiver = ChunkBitset::from_bools(&[true, true, true, true]);
        assert_eq!(sender.first_useful(&receiver), None);
        assert_eq!(sender.last_useful(&receiver), None);
        assert_eq!(sender.circular_useful(&receiver, 2), None);
        assert_eq!(sender.rarest_useful(&receiver, &[1; 4]), None);
    }

    #[test]
    fn rarest_prefers_low_replication_then_low_index() {
        let sender = ChunkBitset::from_bools(&[true; 100]);
        let receiver = ChunkBitset::new(100);
        let mut replication = vec![5; 100];
        replication[70] = 1;
        replication[90] = 1;
        assert_eq!(sender.rarest_useful(&receiver, &replication), Some(70));
        replication[70] = 2;
        assert_eq!(sender.rarest_useful(&receiver, &replication), Some(90));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        let mut set = ChunkBitset::new(10);
        set.insert(10);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn capacity_mismatch_panics() {
        let a = ChunkBitset::new(10);
        let b = ChunkBitset::new(11);
        let _ = a.first_useful(&b);
    }
}
