//! Round-based simulation engine implementing push-based chunk streaming.
//!
//! Every overlay edge accumulates "credit" at its allocated rate; whenever a full chunk worth
//! of credit is available and the sender holds a chunk missing at the receiver, one chunk is
//! pushed (which chunk is decided by the configured [`ChunkPolicy`]). The engine supports file
//! broadcast and live streaming sources, bandwidth jitter, scheduled churn events and optional
//! per-round progress tracing.
//!
//! [`Simulator`] is the one-shot convenience wrapper: it drives a [`crate::session::Session`]
//! (the stepped data plane) from round 0 to completion over a frozen overlay, applying the
//! attached churn schedule as it goes. Closed-loop runs that *react* to churn (re-solve and
//! hot-swap the overlay mid-broadcast) use the session and [`crate::adapt`] directly.

use crate::events::{ChurnAction, ChurnSchedule};
use crate::metrics::SimReport;
use crate::overlay::Overlay;
use crate::policy::ChunkPolicy;
use crate::session::Session;
use crate::trace::{ProgressTrace, TraceSample};
use serde::{Deserialize, Serialize};

/// How the source obtains the data it broadcasts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourceMode {
    /// The source holds the whole message from the start (file broadcast).
    File,
    /// The source produces chunks at the given rate (live streaming): a chunk can only be
    /// forwarded once the source has produced it.
    Live {
        /// Production rate of the stream (data units per time unit).
        rate: f64,
    },
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of chunks composing the message.
    pub num_chunks: usize,
    /// Size of one chunk, in bandwidth × time units.
    pub chunk_size: f64,
    /// Duration of one simulated round.
    pub round_duration: f64,
    /// Maximum number of rounds to simulate.
    pub max_rounds: usize,
    /// Seed of the pseudo-random generator (runs are reproducible).
    pub seed: u64,
    /// Relative bandwidth jitter: each round, each edge rate is multiplied by a value drawn
    /// uniformly from `[1 − jitter, 1 + jitter]`. Zero means deterministic rates.
    pub jitter: f64,
    /// Source behaviour (file broadcast or live stream).
    pub source_mode: SourceMode,
    /// Which useful chunk is pushed over an edge when several are missing at the receiver.
    pub policy: ChunkPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_chunks: 200,
            chunk_size: 1.0,
            round_duration: 0.25,
            max_rounds: 100_000,
            seed: 0x5EED,
            jitter: 0.0,
            source_mode: SourceMode::File,
            policy: ChunkPolicy::RandomUseful,
        }
    }
}

impl SimConfig {
    /// Adjusts `chunk_size` and `round_duration` so that an edge of rate `reference_rate`
    /// transfers roughly `chunks_per_round` chunks per round. Keeps the number of chunks.
    #[must_use]
    pub fn scaled_to(mut self, reference_rate: f64, chunks_per_round: f64) -> Self {
        if reference_rate > 0.0 && chunks_per_round > 0.0 {
            self.chunk_size = reference_rate * self.round_duration / chunks_per_round;
        }
        self
    }

    /// Returns the configuration with a different chunk-selection policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ChunkPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// The simulation engine.
#[derive(Debug, Clone)]
pub struct Simulator {
    overlay: Overlay,
    config: SimConfig,
    churn: ChurnSchedule,
}

impl Simulator {
    /// Creates a simulator for `overlay` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no chunks, non-positive chunk size or round
    /// duration).
    #[must_use]
    pub fn new(overlay: Overlay, config: SimConfig) -> Self {
        assert!(config.num_chunks > 0, "need at least one chunk");
        assert!(config.chunk_size > 0.0, "chunk size must be positive");
        assert!(
            config.round_duration > 0.0,
            "round duration must be positive"
        );
        assert!(
            (0.0..1.0).contains(&config.jitter),
            "jitter must lie in [0, 1)"
        );
        Simulator {
            overlay,
            config,
            churn: ChurnSchedule::empty(),
        }
    }

    /// Attaches a churn schedule: departed nodes stop sending and receiving from the event
    /// time onwards, rejoining nodes resume with the chunks they already held.
    ///
    /// # Panics
    ///
    /// Panics if an event targets a node outside the overlay.
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnSchedule) -> Self {
        for event in churn.events() {
            assert!(
                event.node < self.overlay.num_nodes(),
                "churn event targets node {} but the overlay has {} nodes",
                event.node,
                self.overlay.num_nodes()
            );
        }
        self.churn = churn;
        self
    }

    /// The overlay being simulated.
    #[must_use]
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The simulation configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The attached churn schedule (empty by default).
    #[must_use]
    pub fn churn(&self) -> &ChurnSchedule {
        &self.churn
    }

    /// Runs the simulation and returns the per-node delivery report.
    #[must_use]
    pub fn run(&self) -> SimReport {
        self.run_internal(None).0
    }

    /// Runs the simulation while sampling a progress trace every `sample_every` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    #[must_use]
    pub fn run_traced(&self, sample_every: usize) -> (SimReport, ProgressTrace) {
        assert!(sample_every > 0, "sample_every must be positive");
        let (report, trace) = self.run_internal(Some(sample_every));
        (report, trace.expect("tracing was requested"))
    }

    fn run_internal(&self, sample_every: Option<usize>) -> (SimReport, Option<ProgressTrace>) {
        let cfg = &self.config;
        let n = self.overlay.num_nodes();
        let num_chunks = cfg.num_chunks;
        let mut session = Session::new(self.overlay.clone(), self.config);
        let mut next_event = 0usize;
        let mut trace = sample_every.map(|_| ProgressTrace::new(num_chunks, n.saturating_sub(1)));

        for round in 0..cfg.max_rounds {
            let time_start = round as f64 * cfg.round_duration;

            // Apply churn events that become effective at or before the start of this round.
            while next_event < self.churn.events().len()
                && self.churn.events()[next_event].time <= time_start
            {
                let event = self.churn.events()[next_event];
                session.set_alive(event.node, matches!(event.action, ChurnAction::Rejoin));
                next_event += 1;
            }

            session.step();

            if let (Some(trace), Some(every)) = (trace.as_mut(), sample_every) {
                if session.rounds_run().is_multiple_of(every) {
                    trace.samples.push(sample(
                        round,
                        session.time(),
                        session.counts(),
                        session.completions(),
                        num_chunks,
                    ));
                }
            }

            // Stop once every currently alive node has completed; departed nodes cannot make
            // progress anyway.
            if session.is_complete() {
                break;
            }
        }

        let rounds_run = session.rounds_run();
        if let Some(trace) = trace.as_mut() {
            if trace
                .samples
                .last()
                .is_none_or(|s| s.round + 1 != rounds_run)
            {
                trace.samples.push(sample(
                    rounds_run.saturating_sub(1),
                    session.time(),
                    session.counts(),
                    session.completions(),
                    num_chunks,
                ));
            }
        }

        (session.report(), trace)
    }
}

fn sample(
    round: usize,
    time: f64,
    count: &[usize],
    completion: &[Option<f64>],
    num_chunks: usize,
) -> TraceSample {
    let receivers = count.len().saturating_sub(1).max(1);
    TraceSample {
        round,
        time,
        min_chunks: count[1..].iter().copied().min().unwrap_or(num_chunks),
        mean_chunks: count[1..].iter().sum::<usize>() as f64 / receivers as f64,
        completed_receivers: completion[1..].iter().filter(|c| c.is_some()).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{ChurnEvent, ChurnSchedule};
    use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
    use bmp_core::cyclic_open::cyclic_open_optimal_scheme;
    use bmp_platform::paper::{figure1, figure14};
    use bmp_platform::Instance;

    fn line_overlay() -> Overlay {
        Overlay::new(3, vec![(0, 1, 2.0), (1, 2, 2.0)])
    }

    #[test]
    fn line_overlay_delivers_at_nominal_rate() {
        let config = SimConfig {
            num_chunks: 100,
            chunk_size: 0.5,
            round_duration: 0.25,
            ..SimConfig::default()
        };
        let report = Simulator::new(line_overlay(), config).run();
        assert!(report.all_completed());
        let rate = report.min_achieved_rate().unwrap();
        // Nominal throughput 2; pipelining costs one chunk of delay per hop.
        assert!(rate > 1.8, "achieved rate {rate}");
        assert!(rate <= 2.0 + 1e-9);
    }

    #[test]
    fn simulation_is_reproducible() {
        let config = SimConfig::default();
        let a = Simulator::new(line_overlay(), config).run();
        let b = Simulator::new(line_overlay(), config).run();
        assert_eq!(a, b);
    }

    #[test]
    fn figure1_acyclic_overlay_sustains_its_throughput() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let overlay = Overlay::from_scheme(&solution.scheme);
        let config = SimConfig {
            num_chunks: 300,
            chunk_size: 0.5,
            round_duration: 0.25,
            ..SimConfig::default()
        };
        let report = Simulator::new(overlay, config).run();
        assert!(report.all_completed());
        let rate = report.min_achieved_rate().unwrap();
        assert!(
            rate > 0.85 * solution.throughput,
            "achieved {rate} vs nominal {}",
            solution.throughput
        );
    }

    #[test]
    fn cyclic_overlay_sustains_its_throughput() {
        let (scheme, t) = cyclic_open_optimal_scheme(&figure14()).unwrap();
        let overlay = Overlay::from_scheme(&scheme);
        let config = SimConfig {
            num_chunks: 300,
            chunk_size: 0.5,
            round_duration: 0.2,
            ..SimConfig::default()
        };
        let report = Simulator::new(overlay, config).run();
        assert!(report.all_completed());
        let rate = report.min_achieved_rate().unwrap();
        // The cyclic overlay has longer relay paths, so the chunk-granularity overhead is
        // larger than in the acyclic case; 80% of the fluid rate is the expected ballpark.
        assert!(rate > 0.8 * t, "achieved {rate} vs nominal {t}");
    }

    #[test]
    fn live_streaming_mode() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let overlay = Overlay::from_scheme(&solution.scheme);
        let config = SimConfig {
            num_chunks: 200,
            chunk_size: 0.5,
            round_duration: 0.25,
            source_mode: SourceMode::Live {
                rate: solution.throughput,
            },
            ..SimConfig::default()
        };
        let report = Simulator::new(overlay, config).run();
        assert!(report.all_completed());
        // The receivers finish shortly after the source itself finished producing.
        let source_done = report.completion_time[0].unwrap();
        let makespan = report.makespan().unwrap();
        assert!(makespan >= source_done);
        assert!(
            makespan < source_done * 1.3 + 5.0,
            "makespan {makespan} too far behind the live source ({source_done})"
        );
    }

    #[test]
    fn jitter_still_delivers() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let overlay = Overlay::from_scheme(&solution.scheme);
        let config = SimConfig {
            num_chunks: 200,
            chunk_size: 0.5,
            round_duration: 0.25,
            jitter: 0.2,
            ..SimConfig::default()
        };
        let report = Simulator::new(overlay, config).run();
        assert!(report.all_completed());
        let rate = report.min_achieved_rate().unwrap();
        assert!(rate > 0.7 * solution.throughput, "achieved {rate}");
    }

    #[test]
    fn bottleneck_overlay_is_limited_by_its_weakest_incoming_rate() {
        // Node 2 only receives at rate 0.5: its achieved rate cannot exceed that.
        let overlay = Overlay::new(3, vec![(0, 1, 4.0), (1, 2, 0.5)]);
        let config = SimConfig {
            num_chunks: 100,
            chunk_size: 0.25,
            round_duration: 0.5,
            ..SimConfig::default()
        };
        let report = Simulator::new(overlay, config).run();
        assert!(report.all_completed());
        let rate_2 = report.achieved_rate(2).unwrap();
        assert!(rate_2 <= 0.5 + 1e-9);
        assert!(rate_2 > 0.4);
    }

    #[test]
    fn unreachable_node_never_completes() {
        let overlay = Overlay::new(3, vec![(0, 1, 1.0)]);
        let config = SimConfig {
            num_chunks: 50,
            max_rounds: 500,
            ..SimConfig::default()
        };
        let report = Simulator::new(overlay, config).run();
        assert!(!report.all_completed());
        assert_eq!(report.completion_time[2], None);
        assert_eq!(report.chunks_received[2], 0);
        assert_eq!(report.min_achieved_rate(), None);
        assert_eq!(report.worst_progress(), 0.0);
    }

    #[test]
    fn scaled_config_helper() {
        let config = SimConfig::default().scaled_to(4.0, 2.0);
        assert!((config.chunk_size - 0.5).abs() < 1e-12);
        let unchanged = SimConfig::default().scaled_to(0.0, 2.0);
        assert_eq!(unchanged.chunk_size, SimConfig::default().chunk_size);
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn rejects_zero_chunks() {
        let config = SimConfig {
            num_chunks: 0,
            ..SimConfig::default()
        };
        let _ = Simulator::new(line_overlay(), config);
    }

    #[test]
    fn homogeneous_chain_of_many_nodes() {
        // A longer relay chain built from an open-only instance.
        let inst = Instance::open_only(1.0, vec![1.0; 10]).unwrap();
        let (scheme, t) = bmp_core::acyclic_open::acyclic_open_optimal_scheme(&inst).unwrap();
        let overlay = Overlay::from_scheme(&scheme);
        let config = SimConfig {
            num_chunks: 200,
            chunk_size: 0.25,
            round_duration: 0.25,
            ..SimConfig::default()
        };
        let report = Simulator::new(overlay, config).run();
        assert!(report.all_completed());
        assert!(report.min_achieved_rate().unwrap() > 0.8 * t);
    }

    #[test]
    fn every_policy_delivers_the_whole_message() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let overlay = Overlay::from_scheme(&solution.scheme);
        for policy in ChunkPolicy::all() {
            let config = SimConfig {
                num_chunks: 200,
                chunk_size: 0.5,
                round_duration: 0.25,
                policy,
                ..SimConfig::default()
            };
            let report = Simulator::new(overlay.clone(), config).run();
            assert!(report.all_completed(), "policy {} failed", policy.label());
            let rate = report.min_achieved_rate().unwrap();
            assert!(
                rate > 0.75 * solution.throughput,
                "policy {} achieved only {rate}",
                policy.label()
            );
        }
    }

    #[test]
    fn sequential_policy_on_a_chain_delivers_in_order() {
        // On a single path with the sequential policy, a node can never hold chunk k+1 without
        // chunk k, so the slowest prefix equals the number of chunks held.
        let config = SimConfig {
            num_chunks: 60,
            chunk_size: 0.5,
            round_duration: 0.25,
            policy: ChunkPolicy::Sequential,
            ..SimConfig::default()
        };
        let report = Simulator::new(line_overlay(), config).run();
        assert!(report.all_completed());
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let config = SimConfig {
            num_chunks: 100,
            chunk_size: 0.5,
            round_duration: 0.25,
            ..SimConfig::default()
        };
        let simulator = Simulator::new(line_overlay(), config);
        let plain = simulator.run();
        let (traced, trace) = simulator.run_traced(4);
        assert_eq!(plain, traced);
        assert!(!trace.is_empty());
        // Progress is monotone without churn.
        assert_eq!(trace.largest_regression(), 0);
        // The trace agrees with the report on the completion time (up to sampling rounding).
        let done = trace.time_to_all_completed().unwrap();
        assert!(done >= traced.makespan().unwrap() - 1e-9);
        assert!(done <= traced.makespan().unwrap() + 4.0 * config.round_duration);
    }

    #[test]
    fn departure_of_the_only_relay_starves_downstream_nodes() {
        // 0 -> 1 -> 2: once node 1 departs, node 2 stops receiving.
        let config = SimConfig {
            num_chunks: 100,
            chunk_size: 0.5,
            round_duration: 0.25,
            max_rounds: 400,
            ..SimConfig::default()
        };
        let churn = ChurnSchedule::departures_at(5.0, &[1]);
        let report = Simulator::new(line_overlay(), config)
            .with_churn(churn)
            .run();
        assert!(!report.all_completed());
        assert!(report.chunks_received[2] < 100);
        // Node 2 only received while node 1 was alive (~5 time units at rate ≤ 2).
        assert!(report.chunks_received[2] as f64 * config.chunk_size <= 2.0 * 5.0 + 1.0);
    }

    #[test]
    fn rejoin_lets_the_broadcast_finish() {
        let config = SimConfig {
            num_chunks: 100,
            chunk_size: 0.5,
            round_duration: 0.25,
            max_rounds: 2_000,
            ..SimConfig::default()
        };
        let churn = ChurnSchedule::new(vec![
            ChurnEvent {
                time: 5.0,
                node: 1,
                action: ChurnAction::Depart,
            },
            ChurnEvent {
                time: 15.0,
                node: 1,
                action: ChurnAction::Rejoin,
            },
        ]);
        let report = Simulator::new(line_overlay(), config)
            .with_churn(churn)
            .run();
        assert!(report.all_completed());
        // The outage delays completion by roughly its duration.
        assert!(report.makespan().unwrap() > 100.0 * 0.5 / 2.0 + 5.0);
    }

    #[test]
    fn departure_of_a_leaf_does_not_block_the_others() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let overlay = Overlay::from_scheme(&solution.scheme);
        let config = SimConfig {
            num_chunks: 150,
            chunk_size: 0.5,
            round_duration: 0.25,
            max_rounds: 2_000,
            ..SimConfig::default()
        };
        // Node 5 is the weakest guarded node; it departs almost immediately.
        let churn = ChurnSchedule::departures_at(0.5, &[5]);
        let report = Simulator::new(overlay, config)
            .with_churn(churn.clone())
            .run();
        // The survivors still finish.
        for &node in &churn.surviving_receivers(6) {
            assert!(
                report.completion_time[node].is_some(),
                "node {node} did not finish"
            );
        }
    }

    #[test]
    #[should_panic(expected = "targets node")]
    fn churn_on_unknown_node_is_rejected() {
        let churn = ChurnSchedule::departures_at(1.0, &[9]);
        let _ = Simulator::new(line_overlay(), SimConfig::default()).with_churn(churn);
    }

    #[test]
    #[should_panic(expected = "sample_every")]
    fn zero_sampling_interval_is_rejected() {
        let _ = Simulator::new(line_overlay(), SimConfig::default()).run_traced(0);
    }

    #[test]
    fn with_policy_builder() {
        let config = SimConfig::default().with_policy(ChunkPolicy::RarestFirst);
        assert_eq!(config.policy, ChunkPolicy::RarestFirst);
    }
}
