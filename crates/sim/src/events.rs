//! Churn injection: scheduled node departures and rejoins during a simulation run.
//!
//! The paper's conclusion states that the computed overlays are "probably not resilient to
//! churn". This module provides the failure-injection side of that claim: a [`ChurnSchedule`]
//! lists at which simulated time which node departs (its incident overlay edges stop carrying
//! data) or rejoins (the edges resume; the node keeps the chunks it already held). Together
//! with `bmp_core::churn` (static residual-throughput analysis and overlay repair) this lets
//! the experiments quantify how much of the nominal rate survives a departure and how cheap a
//! recomputation is.

use bmp_platform::NodeId;
use serde::{DeError, Deserialize, Serialize, Value};

/// What happens to a node at a scheduled time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnAction {
    /// The node leaves: it stops sending and receiving.
    Depart,
    /// The node comes back with the chunks it held when it left.
    Rejoin,
}

/// One scheduled churn event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Simulated time at which the event takes effect (applied at the first round whose start
    /// time is `≥ time`).
    pub time: f64,
    /// The affected node. The source (node 0) is not allowed to depart.
    pub node: NodeId,
    /// Departure or rejoin.
    pub action: ChurnAction,
}

/// A time-ordered list of churn events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// An empty schedule (no churn).
    #[must_use]
    pub fn empty() -> Self {
        ChurnSchedule { events: Vec::new() }
    }

    /// Builds a schedule from events, sorting them by time.
    ///
    /// # Panics
    ///
    /// Panics if an event targets the source (node 0) or has a negative or non-finite time.
    #[must_use]
    pub fn new(mut events: Vec<ChurnEvent>) -> Self {
        for event in &events {
            assert_ne!(event.node, 0, "the source cannot churn");
            assert!(
                event.time.is_finite() && event.time >= 0.0,
                "event times must be non-negative and finite"
            );
        }
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
        ChurnSchedule { events }
    }

    /// Convenience constructor: the listed nodes all depart at `time` and never come back.
    #[must_use]
    pub fn departures_at(time: f64, nodes: &[NodeId]) -> Self {
        ChurnSchedule::new(
            nodes
                .iter()
                .map(|&node| ChurnEvent {
                    time,
                    node,
                    action: ChurnAction::Depart,
                })
                .collect(),
        )
    }

    /// Whether the schedule contains no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by time.
    #[must_use]
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Which nodes are departed (not alive) at simulated time `time`, for a platform of
    /// `num_nodes` nodes. Events at exactly `time` are considered applied.
    #[must_use]
    pub fn departed_at(&self, time: f64, num_nodes: usize) -> Vec<bool> {
        let mut departed = vec![false; num_nodes];
        for event in self.events.iter().filter(|e| e.time <= time) {
            if event.node < num_nodes {
                departed[event.node] = match event.action {
                    ChurnAction::Depart => true,
                    ChurnAction::Rejoin => false,
                };
            }
        }
        departed
    }

    /// Which nodes are departed once every event has been applied.
    #[must_use]
    pub fn final_departed(&self, num_nodes: usize) -> Vec<bool> {
        self.departed_at(f64::INFINITY, num_nodes)
    }

    /// The surviving receivers (alive at the end of the schedule), i.e. the nodes whose
    /// delivery still matters when judging a run under churn.
    #[must_use]
    pub fn surviving_receivers(&self, num_nodes: usize) -> Vec<NodeId> {
        let departed = self.final_departed(num_nodes);
        (1..num_nodes).filter(|&v| !departed[v]).collect()
    }
}

impl Serialize for ChurnSchedule {
    fn to_value(&self) -> Value {
        Value::Object(vec![("events".to_string(), self.events.to_value())])
    }
}

/// Validated deserialization: the same invariants [`ChurnSchedule::new`] enforces by
/// panicking (no source churn, finite non-negative times) surface as errors here, so a
/// corrupted or hand-edited checkpoint is rejected instead of aborting the process.
impl Deserialize for ChurnSchedule {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "ChurnSchedule"))?;
        let events =
            Vec::<ChurnEvent>::from_value(serde::field(fields, "events", "ChurnSchedule")?)?;
        for event in &events {
            if event.node == 0 {
                return Err(DeError::custom("churn schedule targets the source"));
            }
            if !(event.time.is_finite() && event.time >= 0.0) {
                return Err(DeError::custom(
                    "churn event times must be non-negative and finite",
                ));
            }
        }
        Ok(ChurnSchedule::new(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule() {
        let schedule = ChurnSchedule::empty();
        assert!(schedule.is_empty());
        assert_eq!(schedule.departed_at(10.0, 4), vec![false; 4]);
        assert_eq!(schedule.surviving_receivers(4), vec![1, 2, 3]);
    }

    #[test]
    fn events_are_sorted_by_time() {
        let schedule = ChurnSchedule::new(vec![
            ChurnEvent {
                time: 5.0,
                node: 2,
                action: ChurnAction::Depart,
            },
            ChurnEvent {
                time: 1.0,
                node: 1,
                action: ChurnAction::Depart,
            },
        ]);
        assert_eq!(schedule.events()[0].node, 1);
        assert_eq!(schedule.events()[1].node, 2);
    }

    #[test]
    fn departures_and_rejoins_compose_over_time() {
        let schedule = ChurnSchedule::new(vec![
            ChurnEvent {
                time: 1.0,
                node: 1,
                action: ChurnAction::Depart,
            },
            ChurnEvent {
                time: 3.0,
                node: 1,
                action: ChurnAction::Rejoin,
            },
            ChurnEvent {
                time: 2.0,
                node: 2,
                action: ChurnAction::Depart,
            },
        ]);
        assert_eq!(
            schedule.departed_at(0.5, 4),
            vec![false, false, false, false]
        );
        assert_eq!(
            schedule.departed_at(1.5, 4),
            vec![false, true, false, false]
        );
        assert_eq!(schedule.departed_at(2.5, 4), vec![false, true, true, false]);
        assert_eq!(
            schedule.departed_at(3.5, 4),
            vec![false, false, true, false]
        );
        assert_eq!(schedule.final_departed(4), vec![false, false, true, false]);
        assert_eq!(schedule.surviving_receivers(4), vec![1, 3]);
    }

    #[test]
    fn departures_at_helper() {
        let schedule = ChurnSchedule::departures_at(2.0, &[3, 1]);
        assert_eq!(schedule.events().len(), 2);
        assert_eq!(
            schedule.final_departed(5),
            vec![false, true, false, true, false]
        );
        assert_eq!(schedule.surviving_receivers(5), vec![2, 4]);
    }

    #[test]
    fn out_of_range_nodes_are_ignored_in_queries() {
        let schedule = ChurnSchedule::departures_at(1.0, &[7]);
        assert_eq!(schedule.final_departed(3), vec![false; 3]);
    }

    #[test]
    #[should_panic(expected = "source cannot churn")]
    fn source_cannot_churn() {
        let _ = ChurnSchedule::departures_at(1.0, &[0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_times_rejected() {
        let _ = ChurnSchedule::new(vec![ChurnEvent {
            time: -1.0,
            node: 1,
            action: ChurnAction::Depart,
        }]);
    }
}
