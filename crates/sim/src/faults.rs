//! The fault-injection plane: seeded, replayable failure scripts for whole sessions.
//!
//! `bmp_core::faults` provides the low-level interception sites (solver errors, forced
//! verification failures, probe timeouts) scripted by occurrence index. This module
//! composes those into a session-level [`FaultPlan`]: one seeded object that describes
//! *everything* that goes wrong during a run — which solve attempts fail, which
//! verifications are forced to lie, which degradation probes time out, how many flow
//! pool workers are made to panic, and what churn storm rages while all of that
//! happens. The plan is deterministic: the same seed replays the same storm, which is
//! what lets the hardening tests assert exact retry, fallback and degradation
//! sequences, and lets the crash-recovery smoke reproduce a faulted run bit for bit.
//!
//! Production paths pay nothing: a plan is only consulted when explicitly installed on
//! an [`EvalCtx`] (a single-branch `Option` check per site) and explicitly armed on the
//! flow pool. Nothing in this module reads process state except
//! [`FaultPlan::from_env`], which the fault-matrix CI job drives through the
//! `BMP_FAULT_PLAN` environment variable.

use crate::events::{ChurnAction, ChurnEvent, ChurnSchedule};
use bmp_core::solver::EvalCtx;
use bmp_core::InjectedFaults;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Environment variable consulted by [`FaultPlan::from_env`] (`off`/`0`/empty disable,
/// `storm` enables the default seeded storm, `storm:<seed>` or a bare integer pick the
/// seed).
pub const FAULT_PLAN_ENV: &str = "BMP_FAULT_PLAN";

/// Default storm seed used by `BMP_FAULT_PLAN=storm`.
pub const DEFAULT_STORM_SEED: u64 = 0xFA17;

/// A deterministic session-level fault script.
///
/// Occurrence indices count *reaches of the site after installation* (see
/// [`InjectedFaults`]), not wall-clock or simulated time, so the plan replays
/// identically regardless of machine speed or pool parallelism.
///
/// Serializable so a fleet checkpoint can embed the plan it was running under — a
/// resumed fleet rebuilds the exact same fault scripts from it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    solve_failures: Vec<u64>,
    verify_failures: Vec<u64>,
    probe_timeouts: Vec<u64>,
    worker_panics: u64,
    storm_seed: u64,
}

impl FaultPlan {
    /// The empty plan: nothing fails. [`FaultPlan::install`] of a disabled plan leaves
    /// the context's fault hook `None`, so the production fast path is untouched.
    #[must_use]
    pub fn disabled() -> Self {
        FaultPlan {
            solve_failures: Vec::new(),
            verify_failures: Vec::new(),
            probe_timeouts: Vec::new(),
            worker_panics: 0,
            storm_seed: 0,
        }
    }

    /// A seeded fault storm: three solve failures, one forced verification failure and
    /// one probe timeout at seed-chosen early occurrences, plus one flow-worker panic.
    /// Identical seeds produce identical plans.
    #[must_use]
    pub fn storm(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut solve_failures = Vec::with_capacity(3);
        while solve_failures.len() < 3 {
            let occurrence = rng.gen_range(0..6) as u64;
            if !solve_failures.contains(&occurrence) {
                solve_failures.push(occurrence);
            }
        }
        solve_failures.sort_unstable();
        FaultPlan {
            solve_failures,
            verify_failures: vec![rng.gen_range(0..4) as u64],
            probe_timeouts: vec![rng.gen_range(0..2) as u64],
            worker_panics: 1,
            storm_seed: seed,
        }
    }

    /// Parses a `BMP_FAULT_PLAN` specification: `off`, `0` or the empty string mean no
    /// plan; `storm` means [`FaultPlan::storm`] with [`DEFAULT_STORM_SEED`];
    /// `storm:<seed>` or a bare unsigned integer pick the storm seed.
    ///
    /// # Panics
    ///
    /// Panics on a malformed specification — a typo in a CI matrix should fail the job
    /// loudly, not silently run without faults.
    #[must_use]
    pub fn parse(spec: &str) -> Option<Self> {
        let spec = spec.trim();
        match spec {
            "" | "off" | "0" => None,
            "storm" => Some(FaultPlan::storm(DEFAULT_STORM_SEED)),
            _ => {
                let seed = spec
                    .strip_prefix("storm:")
                    .unwrap_or(spec)
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("unrecognized {FAULT_PLAN_ENV} spec {spec:?}"));
                Some(FaultPlan::storm(seed))
            }
        }
    }

    /// Reads the plan from the `BMP_FAULT_PLAN` environment variable (see
    /// [`FaultPlan::parse`]). Returns `None` when the variable is unset or disables the
    /// plan. Only fault-aware entry points (the storm experiment and the hardening
    /// tests) consult this — the regular suite ignores the variable, so the CI
    /// fault matrix can export it globally without perturbing unrelated tests.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        std::env::var(FAULT_PLAN_ENV)
            .ok()
            .and_then(|spec| FaultPlan::parse(&spec))
    }

    /// Replaces the scheduled solve failures (builder style).
    #[must_use]
    pub fn with_solve_failures(mut self, occurrences: Vec<u64>) -> Self {
        self.solve_failures = occurrences;
        self
    }

    /// Replaces the scheduled forced verification failures (builder style).
    #[must_use]
    pub fn with_verify_failures(mut self, occurrences: Vec<u64>) -> Self {
        self.verify_failures = occurrences;
        self
    }

    /// Replaces the scheduled probe timeouts (builder style).
    #[must_use]
    pub fn with_probe_timeouts(mut self, occurrences: Vec<u64>) -> Self {
        self.probe_timeouts = occurrences;
        self
    }

    /// Replaces the number of flow-worker panics to arm (builder style).
    #[must_use]
    pub fn with_worker_panics(mut self, panics: u64) -> Self {
        self.worker_panics = panics;
        self
    }

    /// Whether the plan schedules nothing at all.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.solve_failures.is_empty()
            && self.verify_failures.is_empty()
            && self.probe_timeouts.is_empty()
            && self.worker_panics == 0
    }

    /// Scheduled solve-failure occurrences.
    #[must_use]
    pub fn solve_failures(&self) -> &[u64] {
        &self.solve_failures
    }

    /// Scheduled forced-verification-failure occurrences.
    #[must_use]
    pub fn verify_failures(&self) -> &[u64] {
        &self.verify_failures
    }

    /// Scheduled probe-timeout occurrences.
    #[must_use]
    pub fn probe_timeouts(&self) -> &[u64] {
        &self.probe_timeouts
    }

    /// Number of flow-worker panics the plan arms.
    #[must_use]
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics
    }

    /// The occurrence script for the core interception sites, or `None` when no site
    /// is scheduled (so an installed-but-empty plan keeps the fast path).
    #[must_use]
    pub fn injected_faults(&self) -> Option<InjectedFaults> {
        let faults = InjectedFaults::new(
            self.solve_failures.clone(),
            self.verify_failures.clone(),
            self.probe_timeouts.clone(),
        );
        if faults.is_empty() {
            None
        } else {
            Some(faults)
        }
    }

    /// Installs the plan: scripts the context's interception sites and arms the
    /// scheduled flow-worker panics on the process-global pool. Installing a disabled
    /// plan is a no-op that also *clears* any previously installed script on `ctx`.
    pub fn install(&self, ctx: &mut EvalCtx) {
        ctx.set_injected_faults(self.injected_faults());
        if self.worker_panics > 0 {
            bmp_flow::arm_worker_panics(self.worker_panics);
        }
    }

    /// A seeded churn storm at named instants: `waves` depart/rejoin pairs over the
    /// receivers of an `num_nodes`-node platform, the `i`-th wave departing a
    /// seed-chosen receiver at `start + i × spacing` and rejoining it two spacings
    /// later. Merge it into a run's schedule with [`merge_schedules`].
    ///
    /// # Panics
    ///
    /// Panics if the platform has no receivers (`num_nodes < 2`) or `spacing` is not
    /// positive.
    #[must_use]
    pub fn churn_storm(
        &self,
        num_nodes: usize,
        start: f64,
        spacing: f64,
        waves: usize,
    ) -> ChurnSchedule {
        assert!(num_nodes >= 2, "a churn storm needs at least one receiver");
        assert!(spacing > 0.0, "storm spacing must be positive");
        let mut rng = StdRng::seed_from_u64(self.storm_seed ^ 0x570_2217);
        let mut events = Vec::with_capacity(2 * waves);
        for wave in 0..waves {
            let node = rng.gen_range(1..num_nodes);
            let depart_at = start + wave as f64 * spacing;
            events.push(ChurnEvent {
                time: depart_at,
                node,
                action: ChurnAction::Depart,
            });
            events.push(ChurnEvent {
                time: depart_at + 2.0 * spacing,
                node,
                action: ChurnAction::Rejoin,
            });
        }
        ChurnSchedule::new(events)
    }
}

/// Merges two churn schedules into one time-ordered schedule (events at equal times
/// keep `a`-before-`b` order, matching [`ChurnSchedule::new`]'s stable sort).
#[must_use]
pub fn merge_schedules(a: &ChurnSchedule, b: &ChurnSchedule) -> ChurnSchedule {
    let mut events = a.events().to_vec();
    events.extend_from_slice(b.events());
    ChurnSchedule::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_is_deterministic_and_fully_loaded() {
        let plan = FaultPlan::storm(7);
        assert_eq!(plan, FaultPlan::storm(7));
        assert_eq!(plan.solve_failures().len(), 3);
        assert_eq!(plan.verify_failures().len(), 1);
        assert_eq!(plan.probe_timeouts().len(), 1);
        assert_eq!(plan.worker_panics(), 1);
        assert!(!plan.is_disabled());
        // Distinct, sorted solve occurrences.
        let solves = plan.solve_failures();
        assert!(solves.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn parse_covers_the_ci_matrix_forms() {
        assert_eq!(FaultPlan::parse(""), None);
        assert_eq!(FaultPlan::parse("off"), None);
        assert_eq!(FaultPlan::parse("0"), None);
        assert_eq!(
            FaultPlan::parse("storm"),
            Some(FaultPlan::storm(DEFAULT_STORM_SEED))
        );
        assert_eq!(FaultPlan::parse("storm:99"), Some(FaultPlan::storm(99)));
        assert_eq!(FaultPlan::parse("99"), Some(FaultPlan::storm(99)));
    }

    #[test]
    #[should_panic(expected = "unrecognized")]
    fn parse_rejects_garbage() {
        let _ = FaultPlan::parse("storm:not-a-seed");
    }

    #[test]
    fn disabled_plan_clears_the_context_hook() {
        let mut ctx = EvalCtx::new();
        FaultPlan::storm(1).with_worker_panics(0).install(&mut ctx);
        assert!(ctx.injected_faults().is_some());
        FaultPlan::disabled().install(&mut ctx);
        assert!(ctx.injected_faults().is_none());
    }

    #[test]
    fn builders_override_the_storm_defaults() {
        let plan = FaultPlan::disabled()
            .with_solve_failures(vec![0, 1, 2])
            .with_verify_failures(vec![1])
            .with_probe_timeouts(vec![0])
            .with_worker_panics(2);
        assert!(!plan.is_disabled());
        let faults = plan.injected_faults().unwrap();
        assert_eq!(faults.pending(), 5);
        assert_eq!(plan.worker_panics(), 2);
    }

    #[test]
    fn churn_storm_is_deterministic_and_valid() {
        let plan = FaultPlan::storm(3);
        let storm = plan.churn_storm(6, 2.0, 1.0, 4);
        assert_eq!(storm, plan.churn_storm(6, 2.0, 1.0, 4));
        assert_eq!(storm.events().len(), 8);
        for event in storm.events() {
            assert!(event.node >= 1 && event.node < 6);
            assert!(event.time >= 2.0);
        }
        // Every departure has a matching rejoin two spacings later.
        let departs = storm
            .events()
            .iter()
            .filter(|e| e.action == ChurnAction::Depart)
            .count();
        assert_eq!(departs, 4);
    }

    #[test]
    fn merge_schedules_interleaves_by_time() {
        let a = ChurnSchedule::departures_at(5.0, &[1]);
        let b = ChurnSchedule::departures_at(2.0, &[2]);
        let merged = merge_schedules(&a, &b);
        assert_eq!(merged.events().len(), 2);
        assert_eq!(merged.events()[0].node, 2);
        assert_eq!(merged.events()[1].node, 1);
    }
}
