//! Randomized chunk-based streaming simulator — and closed-loop session engine — for
//! broadcast overlays.
//!
//! The paper computes *static* overlay networks (which node sends to which node, at which
//! rate) and delegates the actual data transfer to the decentralized randomized broadcast of
//! Massoulié et al. \[4\]: the message is split into chunks and every sender repeatedly pushes
//! a *random useful* chunk to each of its overlay neighbours, at the rate assigned to that
//! edge. This crate provides a discrete-time simulator of that data plane, in two layers:
//!
//! # The one-shot simulator
//!
//! [`engine::Simulator`] validates an overlay end to end: a scheme of nominal throughput
//! `T` should deliver the whole message to every node at a rate close to `T`. It supports
//! chunk-policy ablation, bandwidth jitter, live-stream sources, scheduled churn and
//! progress tracing — but the overlay it simulates is frozen for the whole run.
//!
//! # The session engine (closed-loop adaptive simulation)
//!
//! The paper's conclusion makes a *dynamic* claim — the overlays tolerate "small
//! variations in communication performance" but are "probably not resilient to churn",
//! and the algorithms are cheap enough to re-run on every membership change. The session
//! layer tests exactly that, live:
//!
//! * [`session::Session`] — the stepped data plane: chunk possession as word-packed
//!   bitsets ([`bitset::ChunkBitset`], O(chunks/64) useful-chunk scans), per-edge credit,
//!   per-node completion, one RNG seeded once from [`SimConfig::seed`] and never
//!   re-seeded. [`session::Session::hot_swap`] replaces the overlay mid-broadcast without
//!   losing delivered chunks (credit on surviving `(from, to)` pairs carries over);
//! * [`adapt`] — the control loop ([`adapt::run_adaptive`], control-flow diagram in the
//!   module docs) and the [`adapt::AdaptationPolicy`] contract: on every membership
//!   change the policy sees the full departed set and may return a replacement overlay.
//!   [`adapt::RepairController`] is the reference implementation: it probes the victim's
//!   degradation tolerance (the *copy-on-probe* idiom of the `bmp_core::scheme` module
//!   docs — one working copy, journaled rate mutations, re-evaluations that skip the
//!   O(n²) rescan), measures the frozen overlay's residual throughput, and re-solves the
//!   surviving platform only when the residual misses its floor;
//! * metrics for the closed loop: [`metrics::SimReport::delivered_goodput`] (defined
//!   even when starved receivers never complete) and the per-swap recovery instants of
//!   [`adapt::SessionOutcome`], so static-vs-repaired runs compare on *delivered*
//!   throughput under the same seed and churn trace.
//!
//! The robustness plane rounds this out: [`faults::FaultPlan`] scripts deterministic
//! fault storms (injected solver failures, forced verification failures, probe
//! timeouts, flow-worker panics, seeded churn storms) into a controller's evaluation
//! context, and [`adapt::AdaptiveRun`] makes the closed loop crash-safe — its
//! [`adapt::RunCheckpoint`] captures session, schedule and controller state so a
//! resumed run replays bit-identically.
//!
//! Module map: [`overlay`] (static weighted digraphs extracted from a
//! [`bmp_core::scheme::BroadcastScheme`]), [`bitset`] (packed possession sets),
//! [`session`] (stepped data plane), [`engine`] (one-shot wrapper), [`adapt`] (control
//! loop, checkpoint/resume), [`faults`] (deterministic fault injection), [`policy`]
//! (chunk selection), [`events`] (churn schedules), [`trace`] (progress time series),
//! [`metrics`] (delivery reports).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod bitset;
pub mod engine;
pub mod events;
pub mod faults;
pub mod metrics;
pub mod overlay;
pub mod policy;
pub mod session;
pub mod trace;

pub use adapt::{
    run_adaptive, AdaptDecision, AdaptationPolicy, AdaptiveRun, ControllerDecision,
    ControllerSnapshot, RepairController, RunCheckpoint, SessionOutcome, StaticPolicy, SwapEvent,
};
pub use bitset::ChunkBitset;
pub use engine::{SimConfig, Simulator, SourceMode};
pub use events::{ChurnAction, ChurnEvent, ChurnSchedule};
pub use faults::{merge_schedules, FaultPlan, DEFAULT_STORM_SEED, FAULT_PLAN_ENV};
pub use metrics::SimReport;
pub use overlay::Overlay;
pub use policy::ChunkPolicy;
pub use session::{RoundStats, Session, SessionSnapshot};
pub use trace::{ProgressTrace, TraceSample};
