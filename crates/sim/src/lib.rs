//! Randomized chunk-based streaming simulator for broadcast overlays.
//!
//! The paper computes *static* overlay networks (which node sends to which node, at which
//! rate) and delegates the actual data transfer to the decentralized randomized broadcast of
//! Massoulié et al. \[4\]: the message is split into chunks and every sender repeatedly pushes
//! a *random useful* chunk to each of its overlay neighbours, at the rate assigned to that
//! edge. This crate provides a discrete-time simulator of that data plane so that the
//! overlays produced by `bmp-core` can be validated end to end: a scheme of nominal
//! throughput `T` should deliver the whole message to every node at a rate close to `T`.
//!
//! * [`overlay`] — the static overlay (nodes, weighted edges) extracted from a
//!   [`bmp_core::scheme::BroadcastScheme`],
//! * [`engine`] — the round-based simulation engine (chunk push policies, optional bandwidth
//!   jitter, file and live-stream modes, churn injection, progress tracing),
//! * [`policy`] — the chunk-selection policies (random-useful, sequential, latest, rarest-first),
//! * [`events`] — scheduled node departures and rejoins (failure injection),
//! * [`trace`] — per-round progress traces of a run,
//! * [`metrics`] — per-node completion times, achieved rates and summary statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod metrics;
pub mod overlay;
pub mod policy;
pub mod trace;

pub use engine::{SimConfig, Simulator, SourceMode};
pub use events::{ChurnAction, ChurnEvent, ChurnSchedule};
pub use metrics::SimReport;
pub use overlay::Overlay;
pub use policy::ChunkPolicy;
pub use trace::{ProgressTrace, TraceSample};
