//! Simulation results: per-node completion times and achieved rates.

use serde::{Deserialize, Serialize};

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Number of chunks of the message.
    pub num_chunks: usize,
    /// Size of one chunk (bandwidth × time units).
    pub chunk_size: f64,
    /// Duration of one simulated round.
    pub round_duration: f64,
    /// Number of rounds that were simulated.
    pub rounds_run: usize,
    /// For every node, the time at which it held the complete message (`None` if it never
    /// completed within the simulated horizon). Index 0 is the source.
    pub completion_time: Vec<Option<f64>>,
    /// For every node, the number of chunks it held at the end of the run.
    pub chunks_received: Vec<usize>,
}

impl SimReport {
    /// Total size of the message.
    #[must_use]
    pub fn message_size(&self) -> f64 {
        self.num_chunks as f64 * self.chunk_size
    }

    /// Achieved delivery rate of `node`: message size divided by its completion time.
    /// Returns `None` when the node did not complete.
    #[must_use]
    pub fn achieved_rate(&self, node: usize) -> Option<f64> {
        self.completion_time[node].map(|t| {
            if t <= 0.0 {
                f64::INFINITY
            } else {
                self.message_size() / t
            }
        })
    }

    /// Whether every node (other than the source) completed.
    #[must_use]
    pub fn all_completed(&self) -> bool {
        self.completion_time.iter().skip(1).all(Option::is_some)
    }

    /// The smallest achieved rate over all receivers, i.e. the empirical analogue of the
    /// scheme throughput. `None` if some receiver never completed.
    #[must_use]
    pub fn min_achieved_rate(&self) -> Option<f64> {
        let mut min = f64::INFINITY;
        for node in 1..self.completion_time.len() {
            min = min.min(self.achieved_rate(node)?);
        }
        Some(min)
    }

    /// Latest completion time over all receivers (`None` if some receiver never completed).
    #[must_use]
    pub fn makespan(&self) -> Option<f64> {
        let mut makespan = 0.0_f64;
        for node in 1..self.completion_time.len() {
            makespan = makespan.max(self.completion_time[node]?);
        }
        Some(makespan)
    }

    /// Average *delivered* data rate per listed receiver: total chunks the nodes hold at
    /// the end of the run, times the chunk size, divided by the simulated time and the
    /// number of nodes. Unlike [`SimReport::min_achieved_rate`] this is defined even when
    /// some receiver never completed — exactly the situation a churned run produces — so
    /// it is the metric the adaptive-session experiments compare against the nominal
    /// throughput (goodput-vs-nominal ratio). Returns 0 for an empty node list or a run
    /// of zero rounds.
    #[must_use]
    pub fn delivered_goodput(&self, nodes: &[usize]) -> f64 {
        let elapsed = self.rounds_run as f64 * self.round_duration;
        if nodes.is_empty() || elapsed <= 0.0 {
            return 0.0;
        }
        let delivered: usize = nodes.iter().map(|&node| self.chunks_received[node]).sum();
        delivered as f64 * self.chunk_size / elapsed / nodes.len() as f64
    }

    /// Fraction of the message received by the slowest receiver at the end of the run.
    #[must_use]
    pub fn worst_progress(&self) -> f64 {
        self.chunks_received
            .iter()
            .skip(1)
            .copied()
            .min()
            .unwrap_or(0) as f64
            / self.num_chunks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            num_chunks: 100,
            chunk_size: 0.5,
            round_duration: 0.1,
            rounds_run: 300,
            completion_time: vec![Some(0.0), Some(20.0), Some(25.0), None],
            chunks_received: vec![100, 100, 100, 60],
        }
    }

    #[test]
    fn message_size_and_rates() {
        let r = report();
        assert!((r.message_size() - 50.0).abs() < 1e-12);
        assert!((r.achieved_rate(1).unwrap() - 2.5).abs() < 1e-12);
        assert!((r.achieved_rate(2).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(r.achieved_rate(3), None);
        assert_eq!(r.achieved_rate(0), Some(f64::INFINITY));
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert!(!r.all_completed());
        assert_eq!(r.min_achieved_rate(), None);
        assert_eq!(r.makespan(), None);
        assert!((r.worst_progress() - 0.6).abs() < 1e-12);
        let complete = SimReport {
            completion_time: vec![Some(0.0), Some(20.0), Some(25.0), Some(50.0)],
            chunks_received: vec![100; 4],
            ..report()
        };
        assert!(complete.all_completed());
        assert!((complete.min_achieved_rate().unwrap() - 1.0).abs() < 1e-12);
        assert!((complete.makespan().unwrap() - 50.0).abs() < 1e-12);
        assert!((complete.worst_progress() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delivered_goodput_averages_over_the_listed_nodes() {
        let r = report();
        // 300 rounds × 0.1 = 30 time units; nodes 1 and 3 hold 100 + 60 chunks of 0.5.
        let goodput = r.delivered_goodput(&[1, 3]);
        assert!((goodput - 160.0 * 0.5 / 30.0 / 2.0).abs() < 1e-12);
        assert_eq!(r.delivered_goodput(&[]), 0.0);
        let empty_run = SimReport {
            rounds_run: 0,
            ..report()
        };
        assert_eq!(empty_run.delivered_goodput(&[1]), 0.0);
    }
}
