//! Static overlays: the weighted digraphs over which the streaming simulation runs.

use bmp_core::scheme::BroadcastScheme;

/// A directed overlay edge with its allocated bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlayEdge {
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// Bandwidth allocated to the edge (data units per time unit).
    pub rate: f64,
}

/// A static overlay network: the output of the scheduling algorithms, input of the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Overlay {
    num_nodes: usize,
    edges: Vec<OverlayEdge>,
    outgoing: Vec<Vec<usize>>,
}

impl Overlay {
    /// Builds an overlay from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a node outside `0..num_nodes`, is a self-loop, or has a
    /// non-positive rate.
    #[must_use]
    pub fn new(num_nodes: usize, edge_list: Vec<(usize, usize, f64)>) -> Self {
        let mut edges = Vec::with_capacity(edge_list.len());
        let mut outgoing = vec![Vec::new(); num_nodes];
        for (from, to, rate) in edge_list {
            assert!(
                from < num_nodes && to < num_nodes,
                "edge endpoint out of range"
            );
            assert_ne!(from, to, "self-loops are not allowed");
            assert!(rate > 0.0 && rate.is_finite(), "edge rate must be positive");
            outgoing[from].push(edges.len());
            edges.push(OverlayEdge { from, to, rate });
        }
        Overlay {
            num_nodes,
            edges,
            outgoing,
        }
    }

    /// Extracts the overlay of a broadcast scheme (one edge per positive rate).
    #[must_use]
    pub fn from_scheme(scheme: &BroadcastScheme) -> Self {
        Overlay::new(scheme.instance().num_nodes(), scheme.edges())
    }

    /// Number of nodes (node 0 is the source).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[OverlayEdge] {
        &self.edges
    }

    /// Indices (into [`Overlay::edges`]) of the edges leaving `node`.
    #[must_use]
    pub fn outgoing(&self, node: usize) -> &[usize] {
        &self.outgoing[node]
    }

    /// Total rate entering `node`.
    #[must_use]
    pub fn in_rate(&self, node: usize) -> f64 {
        self.edges
            .iter()
            .filter(|e| e.to == node)
            .map(|e| e.rate)
            .sum()
    }

    /// Total rate leaving `node`.
    #[must_use]
    pub fn out_rate(&self, node: usize) -> f64 {
        self.outgoing[node]
            .iter()
            .map(|&e| self.edges[e].rate)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
    use bmp_platform::paper::figure1;

    #[test]
    fn build_from_edge_list() {
        let overlay = Overlay::new(3, vec![(0, 1, 2.0), (1, 2, 1.5), (0, 2, 0.5)]);
        assert_eq!(overlay.num_nodes(), 3);
        assert_eq!(overlay.edges().len(), 3);
        assert_eq!(overlay.outgoing(0).len(), 2);
        assert!((overlay.in_rate(2) - 2.0).abs() < 1e-12);
        assert!((overlay.out_rate(0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let _ = Overlay::new(2, vec![(1, 1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let _ = Overlay::new(2, vec![(0, 1, 0.0)]);
    }

    #[test]
    fn from_scheme_matches_scheme_edges() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let overlay = Overlay::from_scheme(&solution.scheme);
        assert_eq!(overlay.num_nodes(), 6);
        assert_eq!(overlay.edges().len(), solution.scheme.edges().len());
        // Every receiver has incoming rate equal to the throughput.
        for node in 1..6 {
            assert!((overlay.in_rate(node) - solution.throughput).abs() < 1e-6);
        }
    }
}
