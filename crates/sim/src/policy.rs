//! Chunk-selection policies for the push-based streaming simulation.
//!
//! Massoulié et al. analyse the *random useful chunk* policy, which is optimal in their fluid
//! model; practical systems use variants (BitTorrent-style rarest-first, in-order delivery for
//! media playback, latest-first for low-lag live streams). The policy only changes *which*
//! useful chunk is pushed over an edge, never *whether* a chunk is pushed, so the asymptotic
//! rate is the same; the transient behaviour (start-up delay, chunk-diversity collapse)
//! differs, and the policy ablation benchmark quantifies that difference on the overlays
//! built by `bmp-core`.
//!
//! Possession state is word-packed ([`ChunkBitset`]): every pick evaluates the useful-chunk
//! predicate 64 chunks at a time instead of byte-by-byte, which is what keeps the per-edge
//! per-round scan affordable at fleet-scale chunk counts (the `sim_round` bench group tracks
//! it).

use crate::bitset::ChunkBitset;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which useful chunk a sender pushes over an edge when several are missing at the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ChunkPolicy {
    /// A uniformly random useful chunk (the policy analysed by Massoulié et al.).
    #[default]
    RandomUseful,
    /// The useful chunk with the lowest index (in-order delivery, best for playback).
    Sequential,
    /// The useful chunk with the highest index (lowest lag behind a live source).
    LatestUseful,
    /// The useful chunk held by the fewest nodes platform-wide, ties broken by lowest index
    /// (BitTorrent-style; keeps chunk diversity high when bandwidth is scarce).
    RarestFirst,
}

impl ChunkPolicy {
    /// All policies, for sweeps and ablation benchmarks.
    #[must_use]
    pub fn all() -> [ChunkPolicy; 4] {
        [
            ChunkPolicy::RandomUseful,
            ChunkPolicy::Sequential,
            ChunkPolicy::LatestUseful,
            ChunkPolicy::RarestFirst,
        ]
    }

    /// Short label used in benchmark and experiment output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ChunkPolicy::RandomUseful => "random-useful",
            ChunkPolicy::Sequential => "sequential",
            ChunkPolicy::LatestUseful => "latest-useful",
            ChunkPolicy::RarestFirst => "rarest-first",
        }
    }

    /// Picks a chunk held by the sender and missing at the receiver, or `None` when the sender
    /// has nothing useful to offer. `replication[c]` is the number of nodes currently holding
    /// chunk `c` (only consulted by [`ChunkPolicy::RarestFirst`]).
    ///
    /// Every scan is word-parallel over the packed possession sets; the random-useful pick
    /// draws one uniform starting index and takes the first useful chunk at or after it
    /// (wrapping), equivalent in distribution to the circular scan of the unpacked data
    /// plane.
    #[must_use]
    pub fn pick(
        &self,
        sender: &ChunkBitset,
        receiver: &ChunkBitset,
        replication: &[usize],
        rng: &mut StdRng,
    ) -> Option<usize> {
        match self {
            ChunkPolicy::RandomUseful => {
                let start = rng.gen_range(0..sender.num_chunks());
                sender.circular_useful(receiver, start)
            }
            ChunkPolicy::Sequential => sender.first_useful(receiver),
            ChunkPolicy::LatestUseful => sender.last_useful(receiver),
            ChunkPolicy::RarestFirst => sender.rarest_useful(receiver, replication),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn sets(sender: &[bool], receiver: &[bool]) -> (ChunkBitset, ChunkBitset) {
        (
            ChunkBitset::from_bools(sender),
            ChunkBitset::from_bools(receiver),
        )
    }

    #[test]
    fn no_useful_chunk_returns_none() {
        let (sender, receiver) = sets(&[true, false, true], &[true, true, true]);
        let replication = vec![1; 3];
        for policy in ChunkPolicy::all() {
            assert_eq!(
                policy.pick(&sender, &receiver, &replication, &mut rng()),
                None
            );
        }
    }

    #[test]
    fn sender_with_nothing_returns_none() {
        let (sender, receiver) = sets(&[false; 4], &[false; 4]);
        let replication = vec![0; 4];
        for policy in ChunkPolicy::all() {
            assert_eq!(
                policy.pick(&sender, &receiver, &replication, &mut rng()),
                None
            );
        }
    }

    #[test]
    fn sequential_picks_lowest_index() {
        let (sender, receiver) = sets(&[true, true, true, true], &[true, false, false, true]);
        let replication = vec![4, 1, 1, 4];
        assert_eq!(
            ChunkPolicy::Sequential.pick(&sender, &receiver, &replication, &mut rng()),
            Some(1)
        );
    }

    #[test]
    fn latest_picks_highest_index() {
        let (sender, receiver) = sets(&[true, true, true, false], &[true, false, false, false]);
        let replication = vec![4, 1, 1, 0];
        assert_eq!(
            ChunkPolicy::LatestUseful.pick(&sender, &receiver, &replication, &mut rng()),
            Some(2)
        );
    }

    #[test]
    fn rarest_first_prefers_low_replication() {
        let (sender, receiver) = sets(&[true, true, true], &[false, false, false]);
        let replication = vec![5, 1, 3];
        assert_eq!(
            ChunkPolicy::RarestFirst.pick(&sender, &receiver, &replication, &mut rng()),
            Some(1)
        );
    }

    #[test]
    fn rarest_first_breaks_ties_by_index() {
        let (sender, receiver) = sets(&[true, true, true], &[false, false, false]);
        let replication = vec![2, 2, 2];
        assert_eq!(
            ChunkPolicy::RarestFirst.pick(&sender, &receiver, &replication, &mut rng()),
            Some(0)
        );
    }

    #[test]
    fn random_useful_only_returns_useful_chunks() {
        let sender_bools = [true, false, true, false, true, false];
        let receiver_bools = [false, false, true, false, false, false];
        let (sender, receiver) = sets(&sender_bools, &receiver_bools);
        let replication = vec![1; 6];
        let mut rng = rng();
        for _ in 0..100 {
            let chunk = ChunkPolicy::RandomUseful
                .pick(&sender, &receiver, &replication, &mut rng)
                .unwrap();
            assert!(sender_bools[chunk] && !receiver_bools[chunk]);
        }
    }

    #[test]
    fn random_useful_eventually_covers_all_useful_chunks() {
        let (sender, receiver) = sets(&[true; 4], &[false; 4]);
        let replication = vec![1; 4];
        let mut rng = rng();
        let mut seen = [false; 4];
        for _ in 0..200 {
            let chunk = ChunkPolicy::RandomUseful
                .pick(&sender, &receiver, &replication, &mut rng)
                .unwrap();
            seen[chunk] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = ChunkPolicy::all().iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn default_is_random_useful() {
        assert_eq!(ChunkPolicy::default(), ChunkPolicy::RandomUseful);
    }
}
