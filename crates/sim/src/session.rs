//! The stepped session engine: data-plane state that survives overlay hot-swaps.
//!
//! [`crate::engine::Simulator`] runs a whole broadcast in one call over a frozen overlay.
//! A [`Session`] is the same data plane — word-packed chunk possession
//! ([`crate::bitset::ChunkBitset`]), per-edge credit, per-node completion — exposed
//! round-by-round, so a *controller* can sit in the loop: observe churn, re-solve the
//! surviving platform, and [`Session::hot_swap`] the freshly computed overlay into the
//! running broadcast without losing a single delivered chunk. The adaptation layer that
//! drives it lives in [`crate::adapt`].
//!
//! Determinism contract: the session owns its RNG, seeded once from
//! [`SimConfig::seed`] at construction and never re-seeded — not even by a hot-swap —
//! so the same seed, churn schedule and controller decisions replay to a bit-identical
//! [`SimReport`]. Hot-swapping an overlay whose edge list is *identical* (same endpoint
//! sequence) keeps the per-edge credit and the shuffled edge order untouched, which makes
//! such a swap a strict no-op for every metric; a swap that changes the edge set carries
//! the credit of surviving `(from, to)` pairs over and starts new edges at zero credit.

use crate::bitset::ChunkBitset;
use crate::engine::{SimConfig, SourceMode};
use crate::metrics::SimReport;
use crate::overlay::Overlay;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// What one simulated round delivered (the controller's per-round observability).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Number of chunk transfers completed this round.
    pub delivered: usize,
    /// Whether every *active* receiver (alive and incomplete at the start of the round)
    /// gained at least one chunk or completed. `true` when no receiver was active. The
    /// post-churn recovery metric is built on this: a repaired overlay has recovered once
    /// nobody is starved any more.
    pub all_active_progressed: bool,
}

/// Serializable image of a running [`Session`]: every field of the data plane including
/// the raw RNG state, so [`Session::resume`] continues the *exact* random stream. The
/// crash-recovery invariant rests on this: checkpoint, kill the process, resume, and the
/// finished broadcast's [`SimReport`] is bit-identical to the uninterrupted run.
///
/// Produced by [`Session::checkpoint`]; serialize with `serde_json` (all fields are
/// finite numbers, booleans or nested vectors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    num_nodes: usize,
    /// Overlay edges as `(from, to, rate)` triples.
    edges: Vec<(usize, usize, f64)>,
    config: SimConfig,
    /// The four xoshiro256** state words of the session RNG.
    rng_state: Vec<u64>,
    /// Word-packed possession set per node (see [`ChunkBitset::words`]).
    has: Vec<Vec<u64>>,
    count: Vec<usize>,
    completion: Vec<Option<f64>>,
    replication: Vec<usize>,
    alive: Vec<bool>,
    credit: Vec<f64>,
    edge_order: Vec<usize>,
    source_available: usize,
    source_progress: f64,
    rounds_run: usize,
    swaps: usize,
    prev_count: Vec<usize>,
}

/// A running broadcast session: the data plane of one simulated swarm.
#[derive(Debug, Clone)]
pub struct Session {
    overlay: Overlay,
    config: SimConfig,
    rng: StdRng,
    /// Word-packed possession set of every node.
    has: Vec<ChunkBitset>,
    count: Vec<usize>,
    completion: Vec<Option<f64>>,
    replication: Vec<usize>,
    alive: Vec<bool>,
    credit: Vec<f64>,
    edge_order: Vec<usize>,
    source_available: usize,
    source_progress: f64,
    rounds_run: usize,
    swaps: usize,
    /// Chunk counts at the start of the current round (recovery observability).
    prev_count: Vec<usize>,
}

impl Session {
    /// Creates a session over `overlay` with the given configuration. The RNG is seeded
    /// from [`SimConfig::seed`] here and nowhere else.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no chunks, non-positive chunk size or
    /// round duration, jitter outside `[0, 1)`).
    #[must_use]
    pub fn new(overlay: Overlay, config: SimConfig) -> Self {
        assert!(config.num_chunks > 0, "need at least one chunk");
        assert!(config.chunk_size > 0.0, "chunk size must be positive");
        assert!(
            config.round_duration > 0.0,
            "round duration must be positive"
        );
        assert!(
            (0.0..1.0).contains(&config.jitter),
            "jitter must lie in [0, 1)"
        );
        let n = overlay.num_nodes();
        let num_chunks = config.num_chunks;
        let mut session = Session {
            rng: StdRng::seed_from_u64(config.seed),
            has: vec![ChunkBitset::new(num_chunks); n],
            count: vec![0; n],
            completion: vec![None; n],
            replication: vec![0; num_chunks],
            alive: vec![true; n],
            credit: vec![0.0; overlay.edges().len()],
            edge_order: (0..overlay.edges().len()).collect(),
            source_available: 0,
            source_progress: 0.0,
            rounds_run: 0,
            swaps: 0,
            prev_count: vec![0; n],
            overlay,
            config,
        };
        if session.config.source_mode == SourceMode::File {
            session.has[0].fill();
            session.count[0] = num_chunks;
            session.completion[0] = Some(0.0);
            session.replication.iter_mut().for_each(|r| *r = 1);
            session.source_available = num_chunks;
        }
        session
    }

    /// The overlay currently carrying the broadcast.
    #[must_use]
    pub fn overlay(&self) -> &Overlay {
        &self.overlay
    }

    /// The simulation configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of rounds stepped so far.
    #[must_use]
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// Simulated time at the end of the last stepped round.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.rounds_run as f64 * self.config.round_duration
    }

    /// Number of overlay hot-swaps performed so far.
    #[must_use]
    pub fn swaps(&self) -> usize {
        self.swaps
    }

    /// Chunks held per node.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.count
    }

    /// Completion time per node (`None` while incomplete). Index 0 is the source.
    #[must_use]
    pub fn completions(&self) -> &[Option<f64>] {
        &self.completion
    }

    /// Whether `node` currently participates (churn flag).
    #[must_use]
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Applies a churn action: a departed node stops sending and receiving, a rejoining
    /// node resumes with the chunks it already held. Takes effect from the next
    /// [`Session::step`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or the source (node 0) is asked to depart.
    pub fn set_alive(&mut self, node: usize, alive: bool) {
        assert!(node < self.alive.len(), "node {node} out of range");
        assert!(node != 0 || alive, "the source cannot depart");
        self.alive[node] = alive;
    }

    /// Whether every node that still matters (alive, plus the source) has completed.
    /// Departed nodes cannot make progress and are not waited for.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.completion
            .iter()
            .zip(&self.alive)
            .all(|(c, &a)| c.is_some() || !a)
    }

    /// Replaces the overlay carrying the broadcast *without* touching possession state,
    /// completion times or the RNG stream. Credit banked on `(from, to)` pairs present in
    /// both overlays carries over; new edges start at zero credit. A swap to an overlay
    /// with the identical edge-endpoint sequence keeps the credit vector and shuffled
    /// edge order byte-for-byte (so swapping in an identical overlay is a metrics no-op).
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ — a hot-swap rewires the same swarm, it does not
    /// resize it (departed nodes stay addressable in case they rejoin) — or if either
    /// overlay contains parallel `(from, to)` edges: credit is banked per node pair, so
    /// duplicates would drop or duplicate banked bandwidth (overlays extracted from a
    /// [`bmp_core::scheme::BroadcastScheme`] are duplicate-free by construction).
    pub fn hot_swap(&mut self, overlay: Overlay) {
        assert_eq!(
            overlay.num_nodes(),
            self.overlay.num_nodes(),
            "hot-swap must preserve the node id space"
        );
        let identical = overlay.edges().len() == self.overlay.edges().len()
            && overlay
                .edges()
                .iter()
                .zip(self.overlay.edges())
                .all(|(new, old)| new.from == old.from && new.to == old.to);
        if !identical {
            let mut banked: HashMap<(usize, usize), f64> =
                HashMap::with_capacity(self.overlay.edges().len());
            for (edge, &credit) in self.overlay.edges().iter().zip(&self.credit) {
                let previous = banked.insert((edge.from, edge.to), credit);
                assert!(
                    previous.is_none(),
                    "hot-swap requires unique (from, to) edges, found a parallel edge \
                     {} -> {} in the running overlay",
                    edge.from,
                    edge.to
                );
            }
            let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(overlay.edges().len());
            self.credit = overlay
                .edges()
                .iter()
                .map(|edge| {
                    assert!(
                        seen.insert((edge.from, edge.to)),
                        "hot-swap requires unique (from, to) edges, found a parallel edge \
                         {} -> {} in the replacement overlay",
                        edge.from,
                        edge.to
                    );
                    banked.get(&(edge.from, edge.to)).copied().unwrap_or(0.0)
                })
                .collect();
            self.edge_order = (0..overlay.edges().len()).collect();
        }
        self.overlay = overlay;
        self.swaps += 1;
    }

    /// Advances the simulation by one round: live-source production, credit accrual and
    /// chunk pushes over every edge (in a freshly shuffled order), completion tracking.
    pub fn step(&mut self) -> RoundStats {
        let cfg = self.config;
        let num_chunks = cfg.num_chunks;
        let time_end = (self.rounds_run + 1) as f64 * cfg.round_duration;
        self.prev_count.copy_from_slice(&self.count);

        // Live source: new chunks become available at the production rate.
        if let SourceMode::Live { rate } = cfg.source_mode {
            self.source_progress += rate * cfg.round_duration;
            let produced = ((self.source_progress / cfg.chunk_size) as usize).min(num_chunks);
            while self.source_available < produced {
                self.has[0].insert(self.source_available);
                self.replication[self.source_available] += 1;
                self.source_available += 1;
                self.count[0] += 1;
            }
            if self.completion[0].is_none() && self.count[0] == num_chunks {
                self.completion[0] = Some(time_end);
            }
        }

        let mut delivered = 0usize;
        self.edge_order.shuffle(&mut self.rng);
        for position in 0..self.edge_order.len() {
            let edge_index = self.edge_order[position];
            let edge = self.overlay.edges()[edge_index];
            if !self.alive[edge.from] || !self.alive[edge.to] {
                // A departed endpoint carries no traffic and banks no credit.
                self.credit[edge_index] = 0.0;
                continue;
            }
            let jitter_factor = if cfg.jitter > 0.0 {
                1.0 + cfg.jitter * (self.rng.gen::<f64>() * 2.0 - 1.0)
            } else {
                1.0
            };
            self.credit[edge_index] += edge.rate * cfg.round_duration * jitter_factor;
            while self.credit[edge_index] + 1e-12 >= cfg.chunk_size {
                let Some(chunk) = cfg.policy.pick(
                    &self.has[edge.from],
                    &self.has[edge.to],
                    &self.replication,
                    &mut self.rng,
                ) else {
                    // No useful chunk: the capacity of this round is lost (it cannot be
                    // banked beyond one chunk worth of credit).
                    self.credit[edge_index] = self.credit[edge_index].min(cfg.chunk_size);
                    break;
                };
                self.has[edge.to].insert(chunk);
                self.count[edge.to] += 1;
                self.replication[chunk] += 1;
                self.credit[edge_index] -= cfg.chunk_size;
                delivered += 1;
                if self.count[edge.to] == num_chunks && self.completion[edge.to].is_none() {
                    self.completion[edge.to] = Some(time_end);
                }
            }
        }
        self.rounds_run += 1;

        let all_active_progressed = (1..self.count.len()).all(|node| {
            let was_active = self.alive[node] && self.prev_count[node] < num_chunks;
            !was_active || self.count[node] > self.prev_count[node]
        });
        RoundStats {
            delivered,
            all_active_progressed,
        }
    }

    /// Captures the complete data-plane state (including the raw RNG state) as a
    /// serializable snapshot. [`Session::resume`] rebuilds an indistinguishable session:
    /// stepping the original and the resumed copy produces bit-identical reports.
    #[must_use]
    pub fn checkpoint(&self) -> SessionSnapshot {
        SessionSnapshot {
            num_nodes: self.overlay.num_nodes(),
            edges: self
                .overlay
                .edges()
                .iter()
                .map(|e| (e.from, e.to, e.rate))
                .collect(),
            config: self.config,
            rng_state: self.rng.state().to_vec(),
            has: self.has.iter().map(|set| set.words().to_vec()).collect(),
            count: self.count.clone(),
            completion: self.completion.clone(),
            replication: self.replication.clone(),
            alive: self.alive.clone(),
            credit: self.credit.clone(),
            edge_order: self.edge_order.clone(),
            source_available: self.source_available,
            source_progress: self.source_progress,
            rounds_run: self.rounds_run,
            swaps: self.swaps,
            prev_count: self.prev_count.clone(),
        }
    }

    /// Rebuilds a session from a [`Session::checkpoint`] snapshot. The RNG continues the
    /// exact stream the checkpointed session would have produced.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is internally inconsistent (mismatched vector lengths, a
    /// malformed edge order, a degenerate configuration, or invalid overlay edges) — the
    /// shapes a corrupted or hand-edited checkpoint file produces.
    #[must_use]
    pub fn resume(snapshot: SessionSnapshot) -> Self {
        let SessionSnapshot {
            num_nodes,
            edges,
            config,
            rng_state,
            has,
            count,
            completion,
            replication,
            alive,
            credit,
            edge_order,
            source_available,
            source_progress,
            rounds_run,
            swaps,
            prev_count,
        } = snapshot;
        // `Session::new` re-checks the configuration; the overlay constructor re-checks
        // the edges. Everything else is validated here before the fields are adopted.
        let fresh = Session::new(Overlay::new(num_nodes, edges), config);
        let n = fresh.overlay.num_nodes();
        let num_edges = fresh.overlay.edges().len();
        assert_eq!(rng_state.len(), 4, "snapshot RNG state must hold 4 words");
        for (label, len) in [
            ("has", has.len()),
            ("count", count.len()),
            ("completion", completion.len()),
            ("alive", alive.len()),
            ("prev_count", prev_count.len()),
        ] {
            assert_eq!(len, n, "snapshot field `{label}` does not cover every node");
        }
        assert_eq!(
            replication.len(),
            config.num_chunks,
            "snapshot replication does not cover every chunk"
        );
        assert_eq!(
            credit.len(),
            num_edges,
            "snapshot credit does not cover every edge"
        );
        let mut order_check: Vec<usize> = edge_order.clone();
        order_check.sort_unstable();
        assert!(
            order_check.into_iter().eq(0..num_edges),
            "snapshot edge order is not a permutation of the edges"
        );
        assert!(alive[0], "the source cannot be departed");
        let has: Vec<ChunkBitset> = has
            .into_iter()
            .map(|words| ChunkBitset::from_words(config.num_chunks, words))
            .collect();
        for (node, set) in has.iter().enumerate() {
            assert_eq!(
                set.count(),
                count[node],
                "snapshot chunk count of node {node} disagrees with its possession set"
            );
        }
        Session {
            rng: StdRng::from_state([rng_state[0], rng_state[1], rng_state[2], rng_state[3]]),
            has,
            count,
            completion,
            replication,
            alive,
            credit,
            edge_order,
            source_available,
            source_progress,
            rounds_run,
            swaps,
            prev_count,
            overlay: fresh.overlay,
            config,
        }
    }

    /// The per-node delivery report of the session so far.
    #[must_use]
    pub fn report(&self) -> SimReport {
        SimReport {
            num_chunks: self.config.num_chunks,
            chunk_size: self.config.chunk_size,
            round_duration: self.config.round_duration,
            rounds_run: self.rounds_run,
            completion_time: self.completion.clone(),
            chunks_received: self.count.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;

    fn line_overlay() -> Overlay {
        Overlay::new(3, vec![(0, 1, 2.0), (1, 2, 2.0)])
    }

    fn config() -> SimConfig {
        SimConfig {
            num_chunks: 80,
            chunk_size: 0.5,
            round_duration: 0.25,
            ..SimConfig::default()
        }
    }

    #[test]
    fn stepping_to_completion_matches_the_one_shot_simulator() {
        let mut session = Session::new(line_overlay(), config());
        for _ in 0..config().max_rounds {
            session.step();
            if session.is_complete() {
                break;
            }
        }
        let stepped = session.report();
        let one_shot = Simulator::new(line_overlay(), config()).run();
        assert_eq!(stepped, one_shot);
        assert_eq!(session.swaps(), 0);
        assert!((session.time() - stepped.rounds_run as f64 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn identical_hot_swap_changes_nothing() {
        let mut swapped = Session::new(line_overlay(), config());
        let mut plain = Session::new(line_overlay(), config());
        for round in 0..200 {
            if round == 40 {
                swapped.hot_swap(line_overlay());
            }
            swapped.step();
            plain.step();
            if swapped.is_complete() && plain.is_complete() {
                break;
            }
        }
        assert_eq!(swapped.report(), plain.report());
        assert_eq!(swapped.swaps(), 1);
    }

    #[test]
    fn hot_swap_keeps_delivered_chunks_and_completion() {
        let mut session = Session::new(line_overlay(), config());
        for _ in 0..30 {
            session.step();
        }
        let counts_before = session.counts().to_vec();
        // Rewire: node 2 now fed straight from the source.
        session.hot_swap(Overlay::new(3, vec![(0, 1, 2.0), (0, 2, 2.0)]));
        assert_eq!(session.counts(), counts_before.as_slice());
        for _ in 0..2_000 {
            session.step();
            if session.is_complete() {
                break;
            }
        }
        assert!(session.report().all_completed());
    }

    #[test]
    fn departed_nodes_receive_nothing_until_rejoin() {
        let mut session = Session::new(line_overlay(), config());
        session.set_alive(1, false);
        for _ in 0..40 {
            session.step();
        }
        assert_eq!(session.counts()[1], 0);
        assert_eq!(session.counts()[2], 0);
        assert!(!session.is_alive(1));
        session.set_alive(1, true);
        for _ in 0..2_000 {
            session.step();
            if session.is_complete() {
                break;
            }
        }
        assert!(session.report().all_completed());
    }

    #[test]
    fn round_stats_report_starvation_and_recovery() {
        let mut session = Session::new(line_overlay(), config());
        session.set_alive(1, false);
        // Node 2 is alive but starved: its only feeder departed.
        let stats = session.step();
        assert!(!stats.all_active_progressed);
        // Rewiring the source straight to node 2 un-starves it within a couple of
        // rounds (credit has to accrue to one chunk first).
        session.hot_swap(Overlay::new(3, vec![(0, 2, 2.0)]));
        let recovered = (0..5).any(|_| session.step().all_active_progressed);
        assert!(recovered);
    }

    #[test]
    fn hot_swap_banks_credit_for_overlapping_edges_only() {
        // Rates below one chunk per round, so credit builds up fractionally.
        let mut session = Session::new(Overlay::new(3, vec![(0, 1, 1.9), (1, 2, 1.7)]), config());
        session.step();
        let credit_01 = session.credit[0];
        let credit_12 = session.credit[1];
        assert!(credit_01 > 0.0 && credit_12 > 0.0);
        // Overlapping swap: (0, 1) survives (reordered, new rate), (1, 2) is dropped,
        // (0, 2) is new.
        session.hot_swap(Overlay::new(3, vec![(0, 2, 1.0), (0, 1, 2.5)]));
        assert_eq!(session.credit, vec![0.0, credit_01]);
        // Swapping back does not resurrect the dropped edge's credit.
        session.hot_swap(Overlay::new(3, vec![(0, 1, 1.9), (1, 2, 1.7)]));
        assert_eq!(session.credit, vec![credit_01, 0.0]);
        let _ = credit_12;
    }

    #[test]
    fn repeated_swaps_between_two_steps_compose() {
        let mut session = Session::new(Overlay::new(3, vec![(0, 1, 1.9), (1, 2, 1.7)]), config());
        session.step();
        let credit_01 = session.credit[0];
        let report_before = session.report();
        // Three swaps back-to-back without stepping: A -> B -> A. The (0, 1) credit
        // survives every hop; the (1, 2) credit dies at the first overlay that lacks
        // the edge and stays dead.
        session.hot_swap(Overlay::new(3, vec![(0, 1, 2.5)]));
        session.hot_swap(Overlay::new(3, vec![(0, 1, 0.1), (0, 2, 3.0)]));
        session.hot_swap(Overlay::new(3, vec![(0, 1, 1.9), (1, 2, 1.7)]));
        assert_eq!(session.swaps(), 3);
        assert_eq!(session.credit, vec![credit_01, 0.0]);
        // Swaps alone never touch possession state or completion.
        assert_eq!(session.report(), report_before);
    }

    #[test]
    fn swap_to_an_empty_overlay_parks_the_broadcast() {
        let mut session = Session::new(line_overlay(), config());
        for _ in 0..10 {
            session.step();
        }
        let counts_before = session.counts().to_vec();
        session.hot_swap(Overlay::new(3, Vec::new()));
        assert!(session.credit.is_empty());
        // Stepping an edgeless overlay delivers nothing but keeps time advancing.
        for _ in 0..5 {
            let stats = session.step();
            assert_eq!(stats.delivered, 0);
            assert!(!stats.all_active_progressed);
        }
        assert_eq!(session.counts(), counts_before.as_slice());
        // Swapping a real overlay back in revives the broadcast (fresh credit).
        session.hot_swap(Overlay::new(3, vec![(0, 1, 2.0), (0, 2, 2.0)]));
        assert_eq!(session.credit, vec![0.0, 0.0]);
        for _ in 0..2_000 {
            session.step();
            if session.is_complete() {
                break;
            }
        }
        assert!(session.report().all_completed());
    }

    #[test]
    fn checkpoint_resume_continues_bit_identically() {
        // Jitter keeps the RNG stream hot so the raw-state restore is load-bearing.
        let config = SimConfig {
            jitter: 0.2,
            ..config()
        };
        let overlay = || Overlay::new(3, vec![(0, 1, 2.0), (1, 2, 2.0)]);
        let mut uninterrupted = Session::new(overlay(), config);
        let mut front = Session::new(overlay(), config);
        for _ in 0..37 {
            uninterrupted.step();
            front.step();
        }
        // Serialize through actual JSON text — the exact crash-recovery path.
        let json = serde_json::to_string(&front.checkpoint()).unwrap();
        drop(front);
        let snapshot: SessionSnapshot = serde_json::from_str(&json).unwrap();
        let mut resumed = Session::resume(snapshot);
        assert_eq!(resumed.rounds_run(), 37);
        loop {
            let a = uninterrupted.step();
            let b = resumed.step();
            assert_eq!(a, b);
            assert_eq!(uninterrupted.counts(), resumed.counts());
            if uninterrupted.is_complete() && resumed.is_complete() {
                break;
            }
            assert!(uninterrupted.rounds_run() < 10_000, "no completion");
        }
        assert_eq!(uninterrupted.report(), resumed.report());
    }

    #[test]
    fn checkpoint_survives_a_hot_swap_and_churn() {
        let mut session = Session::new(line_overlay(), config());
        session.set_alive(1, false);
        for _ in 0..10 {
            session.step();
        }
        session.hot_swap(Overlay::new(3, vec![(0, 2, 2.0)]));
        let snapshot = session.checkpoint();
        let mut resumed = Session::resume(snapshot.clone());
        assert_eq!(resumed.checkpoint(), snapshot);
        assert!(!resumed.is_alive(1));
        assert_eq!(resumed.swaps(), 1);
        for _ in 0..2_000 {
            session.step();
            resumed.step();
            if session.is_complete() {
                break;
            }
        }
        assert_eq!(session.report(), resumed.report());
    }

    #[test]
    #[should_panic(expected = "disagrees with its possession set")]
    fn resume_rejects_a_tampered_snapshot() {
        let mut session = Session::new(line_overlay(), config());
        for _ in 0..5 {
            session.step();
        }
        let mut snapshot = session.checkpoint();
        snapshot.count[2] += 1;
        let _ = Session::resume(snapshot);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn resume_rejects_a_malformed_edge_order() {
        let session = Session::new(line_overlay(), config());
        let mut snapshot = session.checkpoint();
        snapshot.edge_order = vec![0, 0];
        let _ = Session::resume(snapshot);
    }

    #[test]
    #[should_panic(expected = "parallel edge")]
    fn hot_swap_rejects_parallel_edges() {
        let mut session = Session::new(line_overlay(), config());
        session.hot_swap(Overlay::new(3, vec![(0, 1, 1.0), (0, 1, 2.0)]));
    }

    #[test]
    #[should_panic(expected = "node id space")]
    fn hot_swap_rejects_resizes() {
        let mut session = Session::new(line_overlay(), config());
        session.hot_swap(Overlay::new(4, vec![(0, 1, 1.0)]));
    }

    #[test]
    #[should_panic(expected = "source cannot depart")]
    fn source_departure_is_rejected() {
        let mut session = Session::new(line_overlay(), config());
        session.set_alive(0, false);
    }
}
