//! Per-round progress traces of a simulation run.
//!
//! A trace samples, every few rounds, how far the slowest and the average receiver have
//! progressed. It is the raw material for time-series plots (delivery ramp-up, the impact of
//! a churn event mid-stream) and for start-up-delay style metrics that a single end-of-run
//! [`crate::metrics::SimReport`] cannot provide.

/// One sampled point of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Round index at which the sample was taken (after the round's transfers).
    pub round: usize,
    /// Simulated time at the end of that round.
    pub time: f64,
    /// Number of chunks held by the slowest receiver.
    pub min_chunks: usize,
    /// Average number of chunks held over all receivers.
    pub mean_chunks: f64,
    /// Number of receivers that hold the complete message.
    pub completed_receivers: usize,
}

/// A time series of [`TraceSample`]s collected during one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgressTrace {
    /// Number of chunks of the message (for normalisation).
    pub num_chunks: usize,
    /// Number of receivers.
    pub num_receivers: usize,
    /// The samples, in chronological order.
    pub samples: Vec<TraceSample>,
}

impl ProgressTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new(num_chunks: usize, num_receivers: usize) -> Self {
        ProgressTrace {
            num_chunks,
            num_receivers,
            samples: Vec::new(),
        }
    }

    /// Number of samples collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// First simulated time at which the slowest receiver held at least `fraction` of the
    /// message, or `None` if that never happened during the run.
    #[must_use]
    pub fn time_to_worst_fraction(&self, fraction: f64) -> Option<f64> {
        let needed = (fraction * self.num_chunks as f64).ceil() as usize;
        self.samples
            .iter()
            .find(|s| s.min_chunks >= needed)
            .map(|s| s.time)
    }

    /// First simulated time at which every receiver held the full message, or `None`.
    #[must_use]
    pub fn time_to_all_completed(&self) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.completed_receivers == self.num_receivers)
            .map(|s| s.time)
    }

    /// Worst-receiver progress (fraction of the message) at each sample, for plotting.
    #[must_use]
    pub fn worst_progress_series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.time, s.min_chunks as f64 / self.num_chunks as f64))
            .collect()
    }

    /// Largest observed drop in worst-receiver progress between two consecutive samples.
    /// Always zero in a churn-free run (progress is monotone); a churn event that removes a
    /// well-provisioned node shows up as a stall (zero slope), not a drop, so this is mostly a
    /// sanity metric.
    #[must_use]
    pub fn largest_regression(&self) -> usize {
        self.samples
            .windows(2)
            .map(|w| w[0].min_chunks.saturating_sub(w[1].min_chunks))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ProgressTrace {
        ProgressTrace {
            num_chunks: 100,
            num_receivers: 3,
            samples: vec![
                TraceSample {
                    round: 10,
                    time: 2.5,
                    min_chunks: 10,
                    mean_chunks: 20.0,
                    completed_receivers: 0,
                },
                TraceSample {
                    round: 20,
                    time: 5.0,
                    min_chunks: 50,
                    mean_chunks: 60.0,
                    completed_receivers: 1,
                },
                TraceSample {
                    round: 30,
                    time: 7.5,
                    min_chunks: 100,
                    mean_chunks: 100.0,
                    completed_receivers: 3,
                },
            ],
        }
    }

    #[test]
    fn fraction_lookup() {
        let t = trace();
        assert_eq!(t.time_to_worst_fraction(0.1), Some(2.5));
        assert_eq!(t.time_to_worst_fraction(0.5), Some(5.0));
        assert_eq!(t.time_to_worst_fraction(0.51), Some(7.5));
        assert_eq!(t.time_to_worst_fraction(1.0), Some(7.5));
        assert_eq!(t.time_to_all_completed(), Some(7.5));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_trace_has_no_answers() {
        let t = ProgressTrace::new(100, 3);
        assert!(t.is_empty());
        assert_eq!(t.time_to_worst_fraction(0.5), None);
        assert_eq!(t.time_to_all_completed(), None);
        assert_eq!(t.largest_regression(), 0);
        assert!(t.worst_progress_series().is_empty());
    }

    #[test]
    fn progress_series_is_normalised() {
        let t = trace();
        let series = t.worst_progress_series();
        assert_eq!(series.len(), 3);
        assert!((series[0].1 - 0.1).abs() < 1e-12);
        assert!((series[2].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_detection() {
        let mut t = trace();
        assert_eq!(t.largest_regression(), 0);
        t.samples.push(TraceSample {
            round: 40,
            time: 10.0,
            min_chunks: 80,
            mean_chunks: 90.0,
            completed_receivers: 2,
        });
        assert_eq!(t.largest_regression(), 20);
    }
}
