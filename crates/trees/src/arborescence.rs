//! Spanning arborescences rooted at the source.
//!
//! A broadcast tree is an arborescence rooted at the source `C0` that spans every receiver:
//! each receiver has exactly one parent and following parents always leads back to the source.
//! A *weighted* arborescence additionally carries a rate: the share of the stream that is
//! routed along this tree.

use crate::error::TreesError;
use bmp_core::scheme::{BroadcastScheme, RATE_EPS};
use bmp_platform::{Instance, NodeClass, NodeId};
use serde::{Deserialize, Serialize};

/// A spanning arborescence rooted at the source, carrying a share of the broadcast rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arborescence {
    /// `parent[v]` is the node that feeds `v` in this tree; `parent[0]` is `None` (the source
    /// has no parent).
    parent: Vec<Option<NodeId>>,
    /// Rate carried by this tree.
    weight: f64,
}

impl Arborescence {
    /// Builds an arborescence from a parent vector (index 0 must be `None`) and a weight.
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::InvalidArborescence`] when the parent vector is structurally
    /// invalid: a parent assigned to the source, a missing parent for a receiver, a parent
    /// index out of range, or a cycle.
    pub fn new(parent: Vec<Option<NodeId>>, weight: f64) -> Result<Self, TreesError> {
        if parent.is_empty() {
            return Err(TreesError::InvalidArborescence(
                "empty parent vector".into(),
            ));
        }
        if parent[0].is_some() {
            return Err(TreesError::InvalidArborescence(
                "the source cannot have a parent".into(),
            ));
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(TreesError::InvalidArborescence(format!(
                "tree weight must be positive and finite, got {weight}"
            )));
        }
        let n = parent.len();
        for (v, p) in parent.iter().enumerate().skip(1) {
            match p {
                None => {
                    return Err(TreesError::InvalidArborescence(format!(
                        "receiver C{v} has no parent"
                    )))
                }
                Some(u) if *u >= n => {
                    return Err(TreesError::InvalidArborescence(format!(
                        "parent {u} of C{v} is out of range"
                    )))
                }
                Some(u) if *u == v => {
                    return Err(TreesError::InvalidArborescence(format!(
                        "C{v} cannot be its own parent"
                    )))
                }
                Some(_) => {}
            }
        }
        let tree = Arborescence { parent, weight };
        if tree.depths().iter().any(Option::is_none) {
            return Err(TreesError::InvalidArborescence(
                "the parent pointers contain a cycle".into(),
            ));
        }
        Ok(tree)
    }

    /// Number of nodes spanned by the tree (including the source).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `node` in the tree (`None` for the source).
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node]
    }

    /// Rate carried by the tree.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Rescales the rate carried by the tree.
    pub fn set_weight(&mut self, weight: f64) {
        self.weight = weight;
    }

    /// Directed edges `(parent, child)` of the tree.
    #[must_use]
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|u| (u, v)))
            .collect()
    }

    /// Depth of every node (0 for the source, `None` if the parent pointers loop — which
    /// [`Arborescence::new`] rejects, so on constructed values every depth is `Some`).
    #[must_use]
    pub fn depths(&self) -> Vec<Option<usize>> {
        let n = self.parent.len();
        let mut depth: Vec<Option<usize>> = vec![None; n];
        depth[0] = Some(0);
        for start in 1..n {
            if depth[start].is_some() {
                continue;
            }
            // Walk up to a node of known depth, then unwind.
            let mut path = Vec::new();
            let mut current = start;
            while depth[current].is_none() {
                if path.contains(&current) {
                    return depth; // cycle: leave the whole chain as None
                }
                path.push(current);
                match self.parent[current] {
                    Some(p) => current = p,
                    None => break,
                }
            }
            let Some(mut d) = depth[current] else {
                continue;
            };
            for &v in path.iter().rev() {
                d += 1;
                depth[v] = Some(d);
            }
        }
        depth
    }

    /// Largest depth over all receivers.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.depths().into_iter().flatten().max().unwrap_or(0)
    }

    /// Outdegree of `node` within this tree (number of children).
    #[must_use]
    pub fn outdegree(&self, node: NodeId) -> usize {
        self.parent.iter().filter(|&&p| p == Some(node)).count()
    }

    /// Checks that every edge of the tree is supported by the scheme (positive rate) and that
    /// no edge connects two guarded nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TreesError::InvalidArborescence`] describing the first offending edge.
    pub fn check_against_scheme(&self, scheme: &BroadcastScheme) -> Result<(), TreesError> {
        let instance = scheme.instance();
        if self.parent.len() != instance.num_nodes() {
            return Err(TreesError::InvalidArborescence(format!(
                "tree spans {} nodes, scheme has {}",
                self.parent.len(),
                instance.num_nodes()
            )));
        }
        for (u, v) in self.edges() {
            if scheme.rate(u, v) <= RATE_EPS {
                return Err(TreesError::InvalidArborescence(format!(
                    "edge C{u} -> C{v} is not present in the scheme"
                )));
            }
            if firewall_blocked(instance, u, v) {
                return Err(TreesError::InvalidArborescence(format!(
                    "edge C{u} -> C{v} connects two guarded nodes"
                )));
            }
        }
        Ok(())
    }
}

fn firewall_blocked(instance: &Instance, from: NodeId, to: NodeId) -> bool {
    instance.class(from) == NodeClass::Guarded && instance.class(to) == NodeClass::Guarded
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
    use bmp_platform::paper::figure1;

    fn chain(n: usize, weight: f64) -> Arborescence {
        let parent = (0..n)
            .map(|v| if v == 0 { None } else { Some(v - 1) })
            .collect();
        Arborescence::new(parent, weight).unwrap()
    }

    #[test]
    fn chain_structure() {
        let tree = chain(4, 2.0);
        assert_eq!(tree.num_nodes(), 4);
        assert_eq!(tree.weight(), 2.0);
        assert_eq!(tree.parent(0), None);
        assert_eq!(tree.parent(3), Some(2));
        assert_eq!(tree.edges(), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(tree.max_depth(), 3);
        assert_eq!(tree.outdegree(0), 1);
        assert_eq!(tree.outdegree(3), 0);
        assert_eq!(tree.depths(), vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn star_structure() {
        let parent = vec![None, Some(0), Some(0), Some(0)];
        let tree = Arborescence::new(parent, 1.0).unwrap();
        assert_eq!(tree.max_depth(), 1);
        assert_eq!(tree.outdegree(0), 3);
    }

    #[test]
    fn rejects_source_with_parent() {
        let err = Arborescence::new(vec![Some(1), Some(0)], 1.0).unwrap_err();
        assert!(matches!(err, TreesError::InvalidArborescence(_)));
    }

    #[test]
    fn rejects_missing_parent() {
        let err = Arborescence::new(vec![None, None], 1.0).unwrap_err();
        assert!(err.to_string().contains("no parent"));
    }

    #[test]
    fn rejects_out_of_range_parent() {
        let err = Arborescence::new(vec![None, Some(7)], 1.0).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_self_parent() {
        let err = Arborescence::new(vec![None, Some(1)], 1.0).unwrap_err();
        assert!(err.to_string().contains("own parent"));
    }

    #[test]
    fn rejects_cycle() {
        // 1 -> 2 -> 3 -> 1 never reaches the source.
        let err = Arborescence::new(vec![None, Some(3), Some(1), Some(2)], 1.0).unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn rejects_non_positive_weight() {
        assert!(Arborescence::new(vec![None, Some(0)], 0.0).is_err());
        assert!(Arborescence::new(vec![None, Some(0)], f64::NAN).is_err());
        assert!(Arborescence::new(vec![None, Some(0)], f64::INFINITY).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(Arborescence::new(vec![], 1.0).is_err());
    }

    #[test]
    fn check_against_scheme_accepts_supported_edges() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let scheme = &solution.scheme;
        // Build a tree that only uses edges of the scheme: parent = the strongest feeder.
        let n = scheme.instance().num_nodes();
        let mut parent = vec![None; n];
        for (v, slot) in parent.iter_mut().enumerate().skip(1) {
            *slot = (0..n)
                .filter(|&u| u != v && scheme.rate(u, v) > RATE_EPS)
                .max_by(|&a, &b| scheme.rate(a, v).partial_cmp(&scheme.rate(b, v)).unwrap());
        }
        let tree = Arborescence::new(parent, 0.5).unwrap();
        tree.check_against_scheme(scheme).unwrap();
    }

    #[test]
    fn check_against_scheme_rejects_unsupported_edge() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        // A star from the source is not supported: the source does not feed everyone directly.
        let n = solution.scheme.instance().num_nodes();
        let parent: Vec<Option<NodeId>> = (0..n)
            .map(|v| if v == 0 { None } else { Some(0) })
            .collect();
        let tree = Arborescence::new(parent, 0.5).unwrap();
        assert!(tree.check_against_scheme(&solution.scheme).is_err());
    }

    #[test]
    fn check_against_scheme_rejects_firewalled_edge() {
        let mut scheme = bmp_core::scheme::BroadcastScheme::new(figure1());
        // Deliberately add a guarded -> guarded edge to the raw matrix.
        scheme.set_rate(0, 1, 5.0);
        scheme.set_rate(1, 2, 5.0);
        scheme.set_rate(2, 3, 5.0);
        scheme.set_rate(3, 4, 1.0);
        scheme.set_rate(2, 5, 1.0);
        let parent = vec![None, Some(0), Some(1), Some(2), Some(3), Some(2)];
        let tree = Arborescence::new(parent, 0.5).unwrap();
        let err = tree.check_against_scheme(&scheme).unwrap_err();
        assert!(err.to_string().contains("guarded"));
    }

    #[test]
    fn check_against_scheme_rejects_size_mismatch() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let tree = chain(3, 1.0);
        assert!(tree.check_against_scheme(&solution.scheme).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let tree = chain(5, 1.25);
        let json = serde_json::to_string(&tree).unwrap();
        let back: Arborescence = serde_json::from_str(&json).unwrap();
        assert_eq!(tree, back);
    }

    #[test]
    fn set_weight_updates() {
        let mut tree = chain(3, 1.0);
        tree.set_weight(2.5);
        assert_eq!(tree.weight(), 2.5);
    }
}
