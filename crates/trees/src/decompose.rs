//! Exact decomposition of acyclic broadcast schemes into weighted broadcast trees.
//!
//! The construction follows the classical "interval" argument. Every receiver of an acyclic
//! scheme of throughput `T` receives a total rate of at least `T` from nodes that appear
//! earlier in a topological order. Lay the incoming edges of every receiver side by side over
//! the segment `[0, T)` (earlier feeders first). For any level `y ∈ [0, T)`, picking for every
//! receiver the feeder whose interval covers `y` yields a parent function with no cycles
//! (parents precede children in the topological order), i.e. a spanning arborescence rooted at
//! the source. Levels with the same parent function form sub-intervals of `[0, T)`; each
//! maximal sub-interval becomes one weighted broadcast tree, and by construction the total
//! weight of the trees using an edge never exceeds the rate the scheme allocates to it.
//!
//! The number of trees produced is at most `E − R + 1`, where `E` is the number of overlay
//! edges actually used and `R` the number of receivers.

use crate::arborescence::Arborescence;
use crate::error::TreesError;
use bmp_core::scheme::{BroadcastScheme, RATE_EPS};
use bmp_flow::eps;
use bmp_platform::NodeId;
use serde::{Deserialize, Serialize};

/// A set of weighted broadcast trees carrying a broadcast of rate [`TreeDecomposition::throughput`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeDecomposition {
    trees: Vec<Arborescence>,
    throughput: f64,
    num_nodes: usize,
}

impl TreeDecomposition {
    /// Bundles explicitly constructed trees into a decomposition.
    ///
    /// The caller is responsible for the stated `throughput` matching the sum of the tree
    /// weights; [`TreeDecomposition::verify`] checks this (and the capacity constraints)
    /// against a scheme.
    #[must_use]
    pub fn from_trees(trees: Vec<Arborescence>, throughput: f64, num_nodes: usize) -> Self {
        TreeDecomposition {
            trees,
            throughput,
            num_nodes,
        }
    }

    /// The broadcast trees, in increasing level order.
    #[must_use]
    pub fn trees(&self) -> &[Arborescence] {
        &self.trees
    }

    /// Number of trees in the decomposition.
    #[must_use]
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total rate carried by the decomposition (sum of the tree weights).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// Number of nodes of the underlying platform (including the source).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total weight of the trees that route through the edge `from → to`.
    #[must_use]
    pub fn edge_usage(&self, from: NodeId, to: NodeId) -> f64 {
        self.trees
            .iter()
            .filter(|t| t.parent(to) == Some(from))
            .map(Arborescence::weight)
            .sum()
    }

    /// All edges used by at least one tree, with their aggregate usage.
    #[must_use]
    pub fn used_edges(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut usage = vec![0.0_f64; self.num_nodes * self.num_nodes];
        for tree in &self.trees {
            for (u, v) in tree.edges() {
                usage[u * self.num_nodes + v] += tree.weight();
            }
        }
        let mut edges = Vec::new();
        for u in 0..self.num_nodes {
            for v in 0..self.num_nodes {
                if usage[u * self.num_nodes + v] > 0.0 {
                    edges.push((u, v, usage[u * self.num_nodes + v]));
                }
            }
        }
        edges
    }

    /// Largest tree depth over all trees (an upper bound on the pipeline start-up delay in
    /// hops).
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.trees
            .iter()
            .map(Arborescence::max_depth)
            .max()
            .unwrap_or(0)
    }

    /// Largest, over all nodes, of the number of *distinct children* the node has across all
    /// trees — the number of simultaneous connections the node must maintain when the
    /// decomposition is used as the data plane. This never exceeds the outdegree of the node
    /// in the scheme the decomposition was extracted from.
    #[must_use]
    pub fn connection_degree(&self, node: NodeId) -> usize {
        let mut children = vec![false; self.num_nodes];
        for tree in &self.trees {
            for (u, v) in tree.edges() {
                if u == node {
                    children[v] = true;
                }
            }
        }
        children.iter().filter(|&&c| c).count()
    }

    /// Checks the decomposition against the scheme it was extracted from:
    ///
    /// * every tree is a spanning arborescence over edges of the scheme,
    /// * the tree weights sum to the decomposition's throughput,
    /// * for every edge, the aggregate tree usage stays within the rate allocated by the
    ///   scheme, up to [`RATE_EPS`]-sized rounding dust (the schemes themselves are built by
    ///   dichotomic searches, so their rates carry the same dust).
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`TreesError::InvalidArborescence`].
    pub fn verify(&self, scheme: &BroadcastScheme) -> Result<(), TreesError> {
        for tree in &self.trees {
            tree.check_against_scheme(scheme)?;
        }
        let total: f64 = self.trees.iter().map(Arborescence::weight).sum();
        if !eps::approx_eq(total, self.throughput) {
            return Err(TreesError::InvalidArborescence(format!(
                "tree weights sum to {total}, expected {}",
                self.throughput
            )));
        }
        for (u, v, usage) in self.used_edges() {
            let rate = scheme.rate(u, v);
            if usage > rate + RATE_EPS * rate.abs().max(1.0) {
                return Err(TreesError::InvalidArborescence(format!(
                    "edge C{u} -> C{v} is used at rate {usage} but the scheme only allocates {rate}"
                )));
            }
        }
        Ok(())
    }
}

/// Decomposes an acyclic broadcast scheme of throughput `throughput` into weighted broadcast
/// trees.
///
/// # Errors
///
/// * [`TreesError::NonPositiveThroughput`] when `throughput ≤ 0`,
/// * [`TreesError::NotAcyclic`] when the scheme's digraph has a cycle,
/// * [`TreesError::InsufficientIncoming`] when some receiver receives less than `throughput`.
pub fn decompose_acyclic(
    scheme: &BroadcastScheme,
    throughput: f64,
) -> Result<TreeDecomposition, TreesError> {
    if !(throughput.is_finite() && throughput > 0.0) {
        return Err(TreesError::NonPositiveThroughput(throughput));
    }
    let order = scheme.topological_order().ok_or(TreesError::NotAcyclic)?;
    let n = scheme.instance().num_nodes();
    let mut position = vec![0usize; n];
    for (pos, &node) in order.iter().enumerate() {
        position[node] = pos;
    }

    // For every receiver, the feeders laid out over [0, throughput), earliest feeder first.
    // `coverage[v]` is a list of (feeder, start, end) with 0 = start_1 < end_1 = start_2 < …
    let mut coverage: Vec<Vec<(NodeId, f64, f64)>> = vec![Vec::new(); n];
    for v in scheme.instance().receivers() {
        let mut feeders: Vec<NodeId> = (0..n)
            .filter(|&u| u != v && scheme.rate(u, v) > RATE_EPS)
            .collect();
        feeders.sort_by_key(|&u| position[u]);
        let mut level = 0.0_f64;
        for u in feeders {
            if level >= throughput - RATE_EPS {
                break;
            }
            let end = (level + scheme.rate(u, v)).min(throughput);
            coverage[v].push((u, level, end));
            level = end;
        }
        if level + RATE_EPS < throughput {
            return Err(TreesError::InsufficientIncoming {
                node: v,
                received: level,
                required: throughput,
            });
        }
        // Stretch the last interval to exactly `throughput` so rounding dust cannot leave the
        // top level uncovered.
        if let Some(last) = coverage[v].last_mut() {
            last.2 = throughput;
        }
    }

    // Global breakpoints: the union of all interval boundaries strictly inside (0, throughput).
    let mut breakpoints: Vec<f64> = vec![0.0, throughput];
    for intervals in &coverage {
        for &(_, _, end) in intervals {
            if end > RATE_EPS && end < throughput - RATE_EPS {
                breakpoints.push(end);
            }
        }
    }
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"));
    breakpoints.dedup_by(|a, b| (*a - *b).abs() <= RATE_EPS);

    // One tree per consecutive pair of breakpoints.
    let mut trees: Vec<Arborescence> = Vec::with_capacity(breakpoints.len() - 1);
    for window in breakpoints.windows(2) {
        let (start, end) = (window[0], window[1]);
        let width = end - start;
        if width <= RATE_EPS {
            continue;
        }
        let level = 0.5 * (start + end);
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        for v in scheme.instance().receivers() {
            parent[v] = coverage[v]
                .iter()
                .find(|&&(_, s, e)| s <= level && level < e)
                .map(|&(u, _, _)| u);
            if parent[v].is_none() {
                // The stretch above guarantees coverage; this is unreachable in practice but
                // kept as a defensive error rather than a panic.
                return Err(TreesError::InsufficientIncoming {
                    node: v,
                    received: level,
                    required: throughput,
                });
            }
        }
        let tree = Arborescence::new(parent, width)?;
        // Merge with the previous tree when the parent functions coincide.
        if let Some(last) = trees.last_mut() {
            if (0..n).all(|v| last.parent(v) == tree.parent(v)) {
                last.set_weight(last.weight() + width);
                continue;
            }
        }
        trees.push(tree);
    }

    Ok(TreeDecomposition {
        trees,
        throughput,
        num_nodes: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
    use bmp_core::acyclic_open::acyclic_open_optimal_scheme;
    use bmp_core::cyclic_open::cyclic_open_optimal_scheme;
    use bmp_platform::paper::{figure1, figure14};
    use bmp_platform::Instance;

    #[test]
    fn figure1_acyclic_solution_decomposes() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let decomposition = decompose_acyclic(&solution.scheme, solution.throughput).unwrap();
        decomposition.verify(&solution.scheme).unwrap();
        assert!(decomposition.num_trees() >= 1);
        assert!(eps::approx_eq(
            decomposition.throughput(),
            solution.throughput
        ));
        // Tree count bound: at most E - R + 1.
        let e = solution.scheme.edges().len();
        let r = solution.scheme.instance().num_receivers();
        assert!(
            decomposition.num_trees() <= e - r + 1,
            "{} trees",
            decomposition.num_trees()
        );
    }

    #[test]
    fn star_scheme_is_a_single_tree() {
        // Receivers have no upload of their own, so the optimum is the source feeding each of
        // them directly: a single star-shaped broadcast tree.
        let inst = Instance::open_only(3.0, vec![0.0, 0.0, 0.0]).unwrap();
        let (scheme, t) = acyclic_open_optimal_scheme(&inst).unwrap();
        let decomposition = decompose_acyclic(&scheme, t).unwrap();
        decomposition.verify(&scheme).unwrap();
        assert_eq!(decomposition.num_trees(), 1);
        assert_eq!(decomposition.max_depth(), 1);
        assert_eq!(decomposition.trees()[0].outdegree(0), 3);
    }

    #[test]
    fn chain_scheme_is_a_single_path_tree() {
        let inst = Instance::open_only(2.0, vec![2.0, 2.0, 2.0]).unwrap();
        let (scheme, t) = acyclic_open_optimal_scheme(&inst).unwrap();
        let decomposition = decompose_acyclic(&scheme, t).unwrap();
        decomposition.verify(&scheme).unwrap();
        assert_eq!(decomposition.num_trees(), 1);
        assert_eq!(decomposition.max_depth(), 3);
    }

    #[test]
    fn connection_degree_never_exceeds_scheme_outdegree() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let decomposition = decompose_acyclic(&solution.scheme, solution.throughput).unwrap();
        for node in 0..6 {
            assert!(decomposition.connection_degree(node) <= solution.scheme.outdegree(node));
        }
    }

    #[test]
    fn edge_usage_matches_used_edges() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let decomposition = decompose_acyclic(&solution.scheme, solution.throughput).unwrap();
        for (u, v, usage) in decomposition.used_edges() {
            assert!(eps::approx_eq(decomposition.edge_usage(u, v), usage));
            // Capacity respected up to the RATE_EPS dust documented in `verify`.
            assert!(usage <= solution.scheme.rate(u, v) + RATE_EPS);
        }
        assert_eq!(decomposition.edge_usage(5, 0), 0.0);
    }

    #[test]
    fn partial_throughput_decomposition() {
        // Asking for less than the scheme's throughput is allowed: only a prefix of every
        // node's feeders is used.
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let half = solution.throughput / 2.0;
        let decomposition = decompose_acyclic(&solution.scheme, half).unwrap();
        decomposition.verify(&solution.scheme).unwrap();
        assert!(eps::approx_eq(decomposition.throughput(), half));
    }

    #[test]
    fn rejects_cyclic_scheme() {
        let (scheme, t) = cyclic_open_optimal_scheme(&figure14()).unwrap();
        assert_eq!(decompose_acyclic(&scheme, t), Err(TreesError::NotAcyclic));
    }

    #[test]
    fn rejects_non_positive_throughput() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        assert!(matches!(
            decompose_acyclic(&solution.scheme, 0.0),
            Err(TreesError::NonPositiveThroughput(_))
        ));
        assert!(matches!(
            decompose_acyclic(&solution.scheme, f64::NAN),
            Err(TreesError::NonPositiveThroughput(_))
        ));
    }

    #[test]
    fn rejects_starved_receiver() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let err = decompose_acyclic(&solution.scheme, solution.throughput * 2.0).unwrap_err();
        assert!(matches!(err, TreesError::InsufficientIncoming { .. }));
    }

    #[test]
    fn serde_roundtrip() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let decomposition = decompose_acyclic(&solution.scheme, solution.throughput).unwrap();
        let json = serde_json::to_string(&decomposition).unwrap();
        let back: TreeDecomposition = serde_json::from_str(&json).unwrap();
        // serde_json parses floats to within one ULP (the `float_roundtrip` feature is off),
        // so compare structure exactly and weights approximately.
        assert_eq!(back.num_trees(), decomposition.num_trees());
        assert_eq!(back.num_nodes(), decomposition.num_nodes());
        for (a, b) in decomposition.trees().iter().zip(back.trees()) {
            assert_eq!(a.edges(), b.edges());
            assert!(eps::approx_eq(a.weight(), b.weight()));
        }
        assert!(eps::approx_eq(
            back.throughput(),
            decomposition.throughput()
        ));
    }

    #[test]
    fn deep_open_only_instance() {
        // Source-limited open-only instance with many relays: the decomposition still covers
        // every receiver and respects every edge capacity.
        let inst = Instance::open_only(3.0, vec![3.0, 2.5, 2.0, 1.5, 1.0, 0.5, 0.25, 0.0]).unwrap();
        let (scheme, t) = acyclic_open_optimal_scheme(&inst).unwrap();
        let decomposition = decompose_acyclic(&scheme, t).unwrap();
        decomposition.verify(&scheme).unwrap();
        let e = scheme.edges().len();
        let r = inst.num_receivers();
        assert!(decomposition.num_trees() <= e - r + 1);
    }
}
