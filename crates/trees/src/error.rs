//! Error type of the tree-decomposition algorithms.

use std::fmt;

/// Errors raised while decomposing a broadcast scheme into broadcast trees.
#[derive(Debug, Clone, PartialEq)]
pub enum TreesError {
    /// The exact interval decomposition only applies to acyclic schemes.
    NotAcyclic,
    /// A receiver does not receive enough rate to sustain the requested throughput.
    InsufficientIncoming {
        /// The starved receiver.
        node: usize,
        /// Rate it receives in the scheme.
        received: f64,
        /// Throughput the decomposition was asked to carry.
        required: f64,
    },
    /// The requested throughput is not positive.
    NonPositiveThroughput(f64),
    /// An arborescence is malformed (detached node, cycle, wrong root, missing edge…).
    InvalidArborescence(String),
}

impl fmt::Display for TreesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreesError::NotAcyclic => {
                write!(f, "the interval decomposition requires an acyclic scheme")
            }
            TreesError::InsufficientIncoming {
                node,
                received,
                required,
            } => write!(
                f,
                "node C{node} receives only {received} but the decomposition must carry {required}"
            ),
            TreesError::NonPositiveThroughput(t) => {
                write!(f, "throughput to decompose must be positive, got {t}")
            }
            TreesError::InvalidArborescence(reason) => {
                write!(f, "invalid arborescence: {reason}")
            }
        }
    }
}

impl std::error::Error for TreesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TreesError::NotAcyclic.to_string().contains("acyclic"));
        let e = TreesError::InsufficientIncoming {
            node: 3,
            received: 1.5,
            required: 2.0,
        };
        assert!(e.to_string().contains("C3"));
        assert!(e.to_string().contains("1.5"));
        assert!(TreesError::NonPositiveThroughput(-1.0)
            .to_string()
            .contains("-1"));
        assert!(TreesError::InvalidArborescence("cycle".into())
            .to_string()
            .contains("cycle"));
    }
}
