//! Decomposition of broadcast schemes into weighted broadcast trees.
//!
//! Section II-C of the paper notes that the weighted overlay produced by the scheduling
//! algorithms "can be decomposed into a set of weighted broadcast trees" (Schrijver,
//! *Combinatorial Optimization*, vol. B, Chapter 53): a collection of spanning arborescences
//! rooted at the source, each carrying a share of the stream, whose shares sum to the
//! throughput and whose aggregate use of every overlay edge stays within the rate allocated
//! to that edge. The decomposition makes the schedule *operational* — it says which part of
//! the message travels over which edge — and is the classical alternative to running
//! Massoulié's randomized broadcast on the overlay (which `bmp-sim` simulates).
//!
//! * [`arborescence`] — spanning arborescences rooted at the source and their validation,
//! * [`decompose`] — the exact interval decomposition of *acyclic* schemes (the low-degree
//!   schemes built by `bmp-core` are all acyclic except for the cyclic construction of
//!   Theorem 5.2),
//! * [`packing`] — Edmonds-style packing value of arbitrary schemes and a greedy packing
//!   heuristic that also handles cyclic schemes,
//! * [`stripe`] — striping a finite message over a decomposition and estimating per-node
//!   completion times under pipelined chunked transfer,
//! * [`solver`] — an adapter registering the tree-based schedule in the unified solver
//!   API (`bmp_core::solver`), so `solve --algorithm tree-decomposition` works alongside
//!   the core algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arborescence;
pub mod decompose;
pub mod error;
pub mod packing;
pub mod solver;
pub mod stripe;

pub use arborescence::Arborescence;
pub use decompose::{decompose_acyclic, TreeDecomposition};
pub use error::TreesError;
pub use packing::{greedy_packing, packing_value};
pub use solver::{full_registry, TreeDecompositionAlgorithm};
pub use stripe::{completion_estimate, makespan_estimate, stripe_message, StripePlan};
