//! Arborescence packing for general (possibly cyclic) broadcast schemes.
//!
//! Edmonds' branching theorem (Schrijver, vol. B, Chapter 53) states that the maximum total
//! weight of a fractional packing of spanning arborescences rooted at the source, subject to
//! the edge capacities `c_{i,j}`, equals the minimum over all receivers of the maximum flow
//! from the source to that receiver — i.e. exactly the paper's definition of the throughput of
//! a broadcast scheme. [`packing_value`] computes this bound. [`greedy_packing`] extracts an
//! explicit packing by repeatedly peeling off a bottleneck-weighted arborescence from the
//! residual capacities; it is exact on the single-path and star cases and a lower bound in
//! general (the exact interval decomposition of [`crate::decompose`] should be preferred for
//! acyclic schemes).

use crate::arborescence::Arborescence;
use crate::decompose::TreeDecomposition;
use crate::error::TreesError;
use bmp_core::scheme::{BroadcastScheme, RATE_EPS};
use bmp_platform::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The Edmonds packing bound of a scheme: the largest total rate any packing of broadcast
/// trees can carry, equal to the scheme's throughput `min_k maxflow(C0 → Ck)`.
#[must_use]
pub fn packing_value(scheme: &BroadcastScheme) -> f64 {
    scheme.throughput()
}

/// Outcome of the greedy packing heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GreedyPacking {
    /// The extracted trees, bundled as a decomposition.
    pub decomposition: TreeDecomposition,
    /// The Edmonds bound of the input scheme, for comparison.
    pub upper_bound: f64,
}

impl GreedyPacking {
    /// Fraction of the Edmonds bound achieved by the greedy packing (1 when the heuristic is
    /// exact, 0 when the scheme carries nothing).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.upper_bound <= RATE_EPS {
            1.0
        } else {
            self.decomposition.throughput() / self.upper_bound
        }
    }
}

/// Greedily packs bottleneck-weighted spanning arborescences into the residual capacities of
/// `scheme`. Works on cyclic schemes as well as acyclic ones. Stops when some receiver is no
/// longer reachable in the residual graph; each extracted tree saturates at least one edge, so
/// the number of trees never exceeds the number of overlay edges.
///
/// # Errors
///
/// Propagates [`TreesError::InvalidArborescence`] if an internal tree is malformed (which
/// would indicate a bug rather than a property of the input).
pub fn greedy_packing(scheme: &BroadcastScheme) -> Result<GreedyPacking, TreesError> {
    let n = scheme.instance().num_nodes();
    let mut residual = vec![0.0_f64; n * n];
    for (u, v, rate) in scheme.edges() {
        residual[u * n + v] = rate;
    }

    let mut trees: Vec<Arborescence> = Vec::new();
    let mut total = 0.0_f64;
    while let Some(parent) = bfs_arborescence(&residual, n) {
        // Bottleneck of this tree in the residual capacities.
        let bottleneck = parent
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|u| residual[u * n + v]))
            .fold(f64::INFINITY, f64::min);
        if !bottleneck.is_finite() || bottleneck <= RATE_EPS {
            break;
        }
        for (v, p) in parent.iter().enumerate() {
            if let Some(u) = p {
                residual[u * n + v] -= bottleneck;
            }
        }
        total += bottleneck;
        trees.push(Arborescence::new(parent, bottleneck)?);
    }

    let decomposition = TreeDecomposition::from_trees(trees, total, n);
    Ok(GreedyPacking {
        decomposition,
        upper_bound: packing_value(scheme),
    })
}

/// Breadth-first spanning arborescence over the residual edges, or `None` when some receiver
/// is unreachable from the source.
fn bfs_arborescence(residual: &[f64], n: usize) -> Option<Vec<Option<NodeId>>> {
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut visited = vec![false; n];
    visited[0] = true;
    let mut queue = VecDeque::from([0usize]);
    while let Some(u) = queue.pop_front() {
        for v in 0..n {
            if !visited[v] && residual[u * n + v] > RATE_EPS {
                visited[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    if visited.iter().all(|&v| v) {
        Some(parent)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
    use bmp_core::acyclic_open::acyclic_open_optimal_scheme;
    use bmp_core::cyclic_open::cyclic_open_optimal_scheme;
    use bmp_flow::eps;
    use bmp_platform::paper::{figure1, figure14};
    use bmp_platform::Instance;

    #[test]
    fn packing_value_is_the_scheme_throughput() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        assert!(eps::approx_eq(
            packing_value(&solution.scheme),
            solution.scheme.throughput()
        ));
    }

    #[test]
    fn greedy_packing_on_a_star_is_exact() {
        let inst = Instance::open_only(100.0, vec![1.0, 1.0, 1.0]).unwrap();
        let (scheme, t) = acyclic_open_optimal_scheme(&inst).unwrap();
        let packing = greedy_packing(&scheme).unwrap();
        assert!(eps::approx_eq(packing.decomposition.throughput(), t));
        assert!((packing.efficiency() - 1.0).abs() < 1e-9);
        packing.decomposition.verify(&scheme).unwrap();
    }

    #[test]
    fn greedy_packing_on_a_chain_is_exact() {
        let inst = Instance::open_only(2.0, vec![2.0, 2.0, 2.0]).unwrap();
        let (scheme, t) = acyclic_open_optimal_scheme(&inst).unwrap();
        let packing = greedy_packing(&scheme).unwrap();
        assert!(eps::approx_eq(packing.decomposition.throughput(), t));
        packing.decomposition.verify(&scheme).unwrap();
    }

    #[test]
    fn greedy_packing_never_exceeds_the_bound_and_respects_capacities() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let packing = greedy_packing(&solution.scheme).unwrap();
        assert!(eps::approx_le(
            packing.decomposition.throughput(),
            packing.upper_bound
        ));
        packing.decomposition.verify(&solution.scheme).unwrap();
        assert!(packing.efficiency() <= 1.0 + 1e-9);
        assert!(packing.efficiency() > 0.0);
    }

    #[test]
    fn greedy_packing_handles_cyclic_schemes() {
        let (scheme, t) = cyclic_open_optimal_scheme(&figure14()).unwrap();
        let packing = greedy_packing(&scheme).unwrap();
        // The heuristic yields a genuine (possibly partial) packing of the cyclic overlay.
        packing.decomposition.verify(&scheme).unwrap();
        assert!(packing.decomposition.throughput() > 0.0);
        assert!(eps::approx_le(packing.decomposition.throughput(), t));
    }

    #[test]
    fn greedy_packing_of_an_empty_scheme_is_empty() {
        let scheme = bmp_core::scheme::BroadcastScheme::new(figure1());
        let packing = greedy_packing(&scheme).unwrap();
        assert_eq!(packing.decomposition.num_trees(), 0);
        assert_eq!(packing.decomposition.throughput(), 0.0);
        assert!((packing.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_count_is_bounded_by_edge_count() {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let packing = greedy_packing(&solution.scheme).unwrap();
        assert!(packing.decomposition.num_trees() <= solution.scheme.edges().len());
    }
}
