//! Adapter exposing the tree decomposition as a registered [`Solver`].
//!
//! The core registry (`bmp_core::solver::registry`) enumerates the algorithms of
//! `bmp-core`; this module contributes the tree-based schedule: solve the instance with
//! the acyclic-guarded algorithm (Theorem 4.1), decompose the resulting overlay into
//! weighted broadcast trees ([`decompose_acyclic`]), and return the overlay *implied by
//! the trees* — the scheme whose rate on each edge is the aggregate weight of the trees
//! using it. The trees are the operational data plane (each one says which share of the
//! stream travels over which edge), so this solver answers "what does the tree-shaped
//! deployment of the optimal acyclic schedule look like, and what does it cost?".
//!
//! The CLI appends this adapter to the core registry for `solve --algorithm`
//! dispatch; it lives here (not in `bmp-core`) because `bmp-trees` depends on
//! `bmp-core`, not the other way around.

use crate::decompose::decompose_acyclic;
use bmp_core::solver::{EvalCtx, Solution, SolveRecorder, Solver};
use bmp_core::{BroadcastScheme, CoreError};
use bmp_platform::Instance;

/// Tree-decomposition schedule: Theorem 4.1 overlay, re-expressed through its broadcast
/// trees.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeDecompositionAlgorithm;

impl Solver for TreeDecompositionAlgorithm {
    fn name(&self) -> &'static str {
        "tree-decomposition"
    }

    fn describe(&self) -> &'static str {
        "acyclic-guarded overlay decomposed into weighted broadcast trees (Section II-C), returned as the tree-aggregate scheme; any instance"
    }

    fn solve(&self, instance: &Instance, ctx: &mut EvalCtx) -> Result<Solution, CoreError> {
        let recorder = SolveRecorder::start(ctx);
        let base = bmp_core::solver::AcyclicGuardedAlgorithm.solve(instance, ctx)?;
        if base.throughput <= 0.0 {
            // Nothing to decompose; the empty overlay is already tree-shaped.
            return Ok(Solution {
                algorithm: self.name(),
                ..base
            });
        }
        let decomposition = decompose_acyclic(&base.scheme, base.throughput).map_err(|e| {
            CoreError::Unsupported {
                algorithm: "tree-decomposition",
                reason: e.to_string(),
            }
        })?;
        let mut scheme = BroadcastScheme::new(instance.clone());
        for (from, to, weight) in decomposition.used_edges() {
            // The trees cover each overlay edge up to its allocated rate; summing their
            // weights can overshoot it by accumulated rounding, so clamp to the base
            // rate to keep the aggregate scheme exactly as feasible as the base overlay.
            scheme.set_rate(from, to, weight.min(base.scheme.rate(from, to)));
        }
        recorder.finish(
            self.name(),
            ctx,
            decomposition.throughput(),
            base.word,
            scheme,
        )
    }
}

/// The core registry plus this crate's adapter — the full solver list the CLI and the
/// umbrella crate dispatch through. Defined once, here, because `bmp-trees` is the
/// highest crate in the dependency order that sees both sides.
#[must_use]
pub fn full_registry() -> Vec<Box<dyn Solver>> {
    let mut solvers = bmp_core::solver::registry();
    solvers.push(Box::new(TreeDecompositionAlgorithm));
    solvers
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmp_core::solver::AcyclicGuardedAlgorithm;
    use bmp_platform::paper::figure1;

    #[test]
    fn tree_solver_matches_the_base_throughput_on_figure1() {
        let instance = figure1();
        let mut ctx = EvalCtx::new();
        let solution = TreeDecompositionAlgorithm
            .solve(&instance, &mut ctx)
            .unwrap();
        assert_eq!(solution.algorithm, "tree-decomposition");
        let base = AcyclicGuardedAlgorithm
            .solve(&instance, &mut EvalCtx::new())
            .unwrap();
        // The trees carry the full base throughput and never over-use an edge, so the
        // aggregate scheme is feasible and achieves the same rate.
        assert!((solution.throughput - base.throughput).abs() < 1e-6);
        assert!(solution.scheme.is_feasible());
        assert!(solution.scheme.is_acyclic());
        assert!(solution.telemetry.flow_solves > 0);
        assert!(solution.telemetry.bisection_iters > 0);
        // Edge usage stays within the base overlay's rates.
        for (from, to, weight) in solution.scheme.edges() {
            assert!(weight <= base.scheme.rate(from, to) + 1e-9);
        }
    }

    #[test]
    fn full_registry_appends_the_adapter_once() {
        let names: Vec<&str> = full_registry().iter().map(|s| s.name()).collect();
        assert_eq!(names.last(), Some(&"tree-decomposition"));
        assert_eq!(
            names.len(),
            bmp_core::solver::registry().len() + 1,
            "adapter appended exactly once"
        );
    }

    #[test]
    fn tree_solver_handles_open_only_instances() {
        let instance = Instance::open_only(6.0, vec![5.0, 4.0, 3.0]).unwrap();
        let solution = TreeDecompositionAlgorithm
            .solve(&instance, &mut EvalCtx::new())
            .unwrap();
        assert!(solution.throughput > 0.0);
        assert!(solution.scheme.is_feasible());
        assert_eq!(solution.word.as_ref().unwrap().num_open(), 3);
    }
}
