//! Striping a finite message over a tree decomposition.
//!
//! Once a scheme has been decomposed into weighted broadcast trees, broadcasting a message of
//! size `M` amounts to cutting it into one stripe per tree, proportional to the tree weights,
//! and pipelining each stripe down its tree in blocks. This module computes the stripe sizes
//! and a simple analytical estimate of the per-node completion times under that schedule,
//! which the `bmp-sim` chunk simulator can be checked against.
//!
//! The block size used on a tree is proportional to the tree's weight (`chunk · w / T`, as in
//! SplitStream-style striping), so every tree needs the same pipeline-fill time per hop:
//!
//! * a node at depth `d` in a tree of weight `w` finishes receiving that tree's stripe of size
//!   `s = M · w / T` at time `≈ s / w + d · chunk / T = M / T + d · chunk / T`,
//! * the node completes when the *last* of its stripes arrives, i.e. at
//!   `M / T + (chunk / T) · max_over_trees depth(node)`.

use crate::decompose::TreeDecomposition;
use crate::error::TreesError;
use serde::{Deserialize, Serialize};

/// How a message is split over the trees of a decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StripePlan {
    /// Total message size.
    pub message_size: f64,
    /// Size of the stripe assigned to each tree (same order as the decomposition's trees).
    pub stripes: Vec<f64>,
}

impl StripePlan {
    /// Sum of all stripe sizes (equals the message size up to rounding).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.stripes.iter().sum()
    }
}

/// Splits a message of size `message_size` over the trees of `decomposition`, proportionally
/// to the tree weights.
///
/// # Errors
///
/// Returns [`TreesError::NonPositiveThroughput`] when the decomposition is empty (it carries
/// no rate) or the message size is not positive.
pub fn stripe_message(
    decomposition: &TreeDecomposition,
    message_size: f64,
) -> Result<StripePlan, TreesError> {
    if !(message_size.is_finite() && message_size > 0.0) {
        return Err(TreesError::NonPositiveThroughput(message_size));
    }
    let throughput = decomposition.throughput();
    if decomposition.num_trees() == 0 || throughput <= 0.0 {
        return Err(TreesError::NonPositiveThroughput(throughput));
    }
    let stripes = decomposition
        .trees()
        .iter()
        .map(|t| message_size * t.weight() / throughput)
        .collect();
    Ok(StripePlan {
        message_size,
        stripes,
    })
}

/// Per-node completion-time estimate when a message of size `message_size` is striped over
/// `decomposition` and pipelined in per-tree blocks of size `chunk_size · weight / T`.
///
/// Index 0 (the source) completes at time 0. The estimate for a receiver is
/// `message / T + (chunk_size / T) · max_over_trees depth(node)`: the fluid streaming time
/// plus one block of pipeline fill per hop of its deepest tree.
///
/// # Errors
///
/// Same conditions as [`stripe_message`]; additionally the chunk size must be positive.
pub fn completion_estimate(
    decomposition: &TreeDecomposition,
    message_size: f64,
    chunk_size: f64,
) -> Result<Vec<f64>, TreesError> {
    if !(chunk_size.is_finite() && chunk_size > 0.0) {
        return Err(TreesError::NonPositiveThroughput(chunk_size));
    }
    // stripe_message validates the message size and the decomposition's throughput.
    let _ = stripe_message(decomposition, message_size)?;
    let throughput = decomposition.throughput();
    let n = decomposition.num_nodes();
    let stream_time = message_size / throughput;
    let fill_per_hop = chunk_size / throughput;
    let mut completion = vec![0.0_f64; n];
    for tree in decomposition.trees() {
        let depths = tree.depths();
        for (node, depth) in depths.iter().enumerate().skip(1) {
            let depth = depth.expect("constructed arborescences have no cycles");
            let arrival = stream_time + depth as f64 * fill_per_hop;
            if arrival > completion[node] {
                completion[node] = arrival;
            }
        }
    }
    Ok(completion)
}

/// Largest completion estimate over the receivers (the broadcast makespan estimate).
///
/// # Errors
///
/// Same conditions as [`completion_estimate`].
pub fn makespan_estimate(
    decomposition: &TreeDecomposition,
    message_size: f64,
    chunk_size: f64,
) -> Result<f64, TreesError> {
    Ok(
        completion_estimate(decomposition, message_size, chunk_size)?
            .into_iter()
            .skip(1)
            .fold(0.0, f64::max),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose_acyclic;
    use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
    use bmp_core::acyclic_open::acyclic_open_optimal_scheme;
    use bmp_platform::paper::figure1;
    use bmp_platform::Instance;

    fn figure1_decomposition() -> (TreeDecomposition, f64) {
        let solution = AcyclicGuardedSolver::default().solve(&figure1());
        let d = decompose_acyclic(&solution.scheme, solution.throughput).unwrap();
        (d, solution.throughput)
    }

    #[test]
    fn stripes_are_proportional_and_sum_to_the_message() {
        let (decomposition, throughput) = figure1_decomposition();
        let plan = stripe_message(&decomposition, 100.0).unwrap();
        assert!((plan.total() - 100.0).abs() < 1e-9);
        for (tree, stripe) in decomposition.trees().iter().zip(&plan.stripes) {
            assert!((stripe - 100.0 * tree.weight() / throughput).abs() < 1e-9);
        }
    }

    #[test]
    fn chain_completion_matches_the_pipeline_formula() {
        let inst = Instance::open_only(2.0, vec![2.0, 2.0, 2.0]).unwrap();
        let (scheme, t) = acyclic_open_optimal_scheme(&inst).unwrap();
        let decomposition = decompose_acyclic(&scheme, t).unwrap();
        assert_eq!(decomposition.num_trees(), 1);
        let completion = completion_estimate(&decomposition, 20.0, 1.0).unwrap();
        // Node at depth d: 20/2 + d * 1/2.
        assert!((completion[1] - 10.5).abs() < 1e-9);
        assert!((completion[2] - 11.0).abs() < 1e-9);
        assert!((completion[3] - 11.5).abs() < 1e-9);
        assert!((makespan_estimate(&decomposition, 20.0, 1.0).unwrap() - 11.5).abs() < 1e-9);
        assert_eq!(completion[0], 0.0);
    }

    #[test]
    fn makespan_is_at_least_the_fluid_lower_bound() {
        let (decomposition, throughput) = figure1_decomposition();
        let message = 50.0;
        let makespan = makespan_estimate(&decomposition, message, 0.5).unwrap();
        assert!(makespan >= message / throughput - 1e-9);
        // With vanishing chunk size the makespan tends to the fluid time.
        let tiny = makespan_estimate(&decomposition, message, 1e-6).unwrap();
        assert!((tiny - message / throughput).abs() < 1e-3);
    }

    #[test]
    fn smaller_chunks_never_increase_the_makespan() {
        let (decomposition, _) = figure1_decomposition();
        let coarse = makespan_estimate(&decomposition, 50.0, 2.0).unwrap();
        let fine = makespan_estimate(&decomposition, 50.0, 0.25).unwrap();
        assert!(fine <= coarse + 1e-9);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let (decomposition, _) = figure1_decomposition();
        assert!(stripe_message(&decomposition, 0.0).is_err());
        assert!(stripe_message(&decomposition, f64::NAN).is_err());
        assert!(completion_estimate(&decomposition, 10.0, 0.0).is_err());
        let empty = TreeDecomposition::from_trees(Vec::new(), 0.0, 6);
        assert!(stripe_message(&empty, 10.0).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let (decomposition, _) = figure1_decomposition();
        let plan = stripe_message(&decomposition, 10.0).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: StripePlan = serde_json::from_str(&json).unwrap();
        // serde_json floats roundtrip to within one ULP; compare approximately.
        assert_eq!(back.stripes.len(), plan.stripes.len());
        assert_eq!(back.message_size, plan.message_size);
        for (a, b) in plan.stripes.iter().zip(&back.stripes) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
