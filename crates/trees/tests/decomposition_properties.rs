//! Property tests: every low-degree acyclic solution produced by the paper's algorithms can be
//! decomposed into weighted broadcast trees, and the decomposition respects its invariants.

use bmp_core::acyclic_guarded::AcyclicGuardedSolver;
use bmp_core::acyclic_open::acyclic_open_optimal_scheme;
use bmp_flow::eps;
use bmp_platform::Instance;
use bmp_trees::{decompose_acyclic, greedy_packing, packing_value};
use proptest::prelude::*;

/// Bandwidths in a range that keeps the solvers numerically comfortable.
fn bandwidth() -> impl Strategy<Value = f64> {
    (1u32..=1000).prop_map(|b| f64::from(b) / 10.0)
}

fn open_guarded_instance() -> impl Strategy<Value = Instance> {
    (
        bandwidth(),
        prop::collection::vec(bandwidth(), 1..12),
        prop::collection::vec(bandwidth(), 0..12),
    )
        .prop_map(|(b0, open, guarded)| {
            Instance::new(b0, open, guarded).expect("positive bandwidths build an instance")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn acyclic_guarded_solutions_decompose_exactly(instance in open_guarded_instance()) {
        let solution = AcyclicGuardedSolver::default().solve(&instance);
        prop_assume!(solution.throughput > 1e-6);
        let decomposition = decompose_acyclic(&solution.scheme, solution.throughput)
            .expect("low-degree acyclic solutions always decompose");
        decomposition.verify(&solution.scheme).expect("decomposition invariants hold");

        // Weights sum to the throughput.
        let total: f64 = decomposition.trees().iter().map(|t| t.weight()).sum();
        prop_assert!(eps::approx_eq(total, solution.throughput));

        // Tree count bound E - R + 1.
        let edges = solution.scheme.edges().len();
        let receivers = instance.num_receivers();
        prop_assert!(decomposition.num_trees() <= edges.saturating_sub(receivers) + 1);

        // The data-plane connection degree never exceeds the scheme outdegree.
        for node in 0..instance.num_nodes() {
            prop_assert!(
                decomposition.connection_degree(node) <= solution.scheme.outdegree(node)
            );
        }
    }

    #[test]
    fn open_only_solutions_decompose_exactly(
        b0 in bandwidth(),
        open in prop::collection::vec(bandwidth(), 2..16),
    ) {
        let instance = Instance::open_only(b0, open).unwrap();
        let (scheme, throughput) = acyclic_open_optimal_scheme(&instance).unwrap();
        prop_assume!(throughput > 1e-6);
        let decomposition = decompose_acyclic(&scheme, throughput).unwrap();
        decomposition.verify(&scheme).unwrap();
        prop_assert!(eps::approx_eq(decomposition.throughput(), throughput));
    }

    #[test]
    fn greedy_packing_is_feasible_and_below_the_bound(instance in open_guarded_instance()) {
        let solution = AcyclicGuardedSolver::default().solve(&instance);
        prop_assume!(solution.throughput > 1e-6);
        let packing = greedy_packing(&solution.scheme).unwrap();
        packing.decomposition.verify(&solution.scheme).unwrap();
        prop_assert!(eps::approx_le(
            packing.decomposition.throughput(),
            packing_value(&solution.scheme)
        ));
        prop_assert!(packing.decomposition.num_trees() <= solution.scheme.edges().len());
    }

    #[test]
    fn stripes_cover_the_message(
        instance in open_guarded_instance(),
        message in 1u32..1000,
    ) {
        let solution = AcyclicGuardedSolver::default().solve(&instance);
        prop_assume!(solution.throughput > 1e-6);
        let decomposition = decompose_acyclic(&solution.scheme, solution.throughput).unwrap();
        let message = f64::from(message);
        let plan = bmp_trees::stripe_message(&decomposition, message).unwrap();
        prop_assert!((plan.total() - message).abs() < 1e-6 * message.max(1.0));
        let completion =
            bmp_trees::completion_estimate(&decomposition, message, message / 100.0).unwrap();
        // Every receiver completes no earlier than the fluid bound.
        for &t in &completion[1..] {
            prop_assert!(t + 1e-9 >= message / solution.throughput);
        }
    }
}
