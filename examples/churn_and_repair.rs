//! Churn: what a departure costs, and what recomputing the overlay buys back.
//!
//! The conclusion of the paper remarks that the computed overlays "should be resilient to
//! small variations in the communication performance of nodes. However [they are] probably
//! not resilient to churn." This example quantifies both halves of the remark on a
//! PlanetLab-like platform:
//!
//! 1. build the optimal low-degree acyclic overlay,
//! 2. remove the busiest relay and measure the residual throughput of the *unchanged* overlay
//!    (static analysis and chunk-level simulation agree: it collapses),
//! 3. re-run the solver on the reduced platform (the "repair") and show that the new overlay
//!    recovers essentially the optimum of the surviving nodes.
//!
//! Run with `cargo run --example churn_and_repair`.

use bmp::core::churn::{repair, residual_throughput};
use bmp::platform::distribution::NamedDistribution;
use bmp::platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp::prelude::*;
use bmp::sim::{ChurnSchedule, Overlay};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 40-node platform with PlanetLab-like bandwidths, 70% open nodes, source pinned to the
    // cyclic optimum (the paper's Figure 19 protocol).
    let config = GeneratorConfig::new(40, 0.7).expect("valid generator config");
    let generator = InstanceGenerator::new(config, NamedDistribution::PLab.build());
    let instance = generator.generate(&mut StdRng::seed_from_u64(2024));
    println!(
        "platform: n = {} open, m = {} guarded, b0 = {:.2}",
        instance.n(),
        instance.m(),
        instance.source_bandwidth()
    );

    let solver = AcyclicGuardedSolver::default();
    let solution = solver.solve(&instance);
    println!("nominal acyclic throughput: {:.3}", solution.throughput);

    // The busiest relay (largest outdegree among the receivers) departs.
    let victim = (1..instance.num_nodes())
        .max_by_key(|&node| solution.scheme.outdegree(node))
        .expect("there is at least one receiver");
    println!(
        "departing node: C{victim} (outdegree {}, bandwidth {:.2})",
        solution.scheme.outdegree(victim),
        instance.bandwidth(victim)
    );

    // Static analysis: throughput of the unchanged overlay restricted to the survivors.
    let residual = residual_throughput(&solution.scheme, &[victim]);
    println!(
        "residual throughput of the frozen overlay: {:.3} ({:.0}% of nominal)",
        residual,
        100.0 * residual / solution.throughput
    );

    // Dynamic confirmation: simulate the departure mid-broadcast.
    let sim_config = SimConfig {
        num_chunks: 400,
        max_rounds: 20_000,
        ..SimConfig::default()
    }
    .scaled_to(solution.throughput, 2.0);
    let half_time = 0.5 * 400.0 * sim_config.chunk_size / solution.throughput;
    let churn = ChurnSchedule::departures_at(half_time, &[victim]);
    let report = Simulator::new(Overlay::from_scheme(&solution.scheme), sim_config)
        .with_churn(churn.clone())
        .run();
    let starving = churn
        .surviving_receivers(instance.num_nodes())
        .into_iter()
        .filter(|&node| report.completion_time[node].is_none())
        .count();
    println!(
        "simulation with the departure at t = {half_time:.1}: {starving} surviving receiver(s) \
         never finished on the frozen overlay"
    );

    // Repair: drop the departed node from the platform and re-run the solver.
    let outcome = repair(&instance, &[victim], &solver).expect("receivers survive");
    println!(
        "repaired overlay: throughput {:.3} on {} surviving receivers \
         (recomputation is linear-time, Theorem 4.1)",
        outcome.solution.throughput,
        outcome.instance.num_receivers()
    );
    let repaired_report = Simulator::new(
        Overlay::from_scheme(&outcome.solution.scheme),
        SimConfig {
            num_chunks: 400,
            max_rounds: 20_000,
            ..SimConfig::default()
        }
        .scaled_to(outcome.solution.throughput, 2.0),
    )
    .run();
    println!(
        "repaired overlay simulation: all survivors completed = {}, worst rate {:.3}",
        repaired_report.all_completed(),
        repaired_report.min_achieved_rate().unwrap_or(0.0)
    );
}
