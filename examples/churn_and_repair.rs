//! Churn: what a departure costs, and what recomputing the overlay buys back — live.
//!
//! The conclusion of the paper remarks that the computed overlays "should be resilient to
//! small variations in the communication performance of nodes. However [they are] probably
//! not resilient to churn." This example quantifies the remark on a PlanetLab-like platform
//! with the closed-loop session engine:
//!
//! 1. build the optimal low-degree acyclic overlay,
//! 2. depart the busiest relay mid-broadcast and stream the *same* churn trace twice —
//!    once over the frozen overlay (the paper's static control plane) and once with the
//!    adaptive repair controller, which probes the victim's degradation tolerance,
//!    measures the residual throughput of the frozen overlay, re-solves the surviving
//!    platform (Theorem 4.1, linear time) and hot-swaps the repaired overlay into the
//!    running session without losing delivered chunks,
//! 3. compare *delivered* goodput and post-churn recovery time under the identical seed.
//!
//! Run with `cargo run --release --example churn_and_repair`.

use bmp::platform::distribution::NamedDistribution;
use bmp::platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp::prelude::*;
use bmp::sim::{run_adaptive, ChurnSchedule, Overlay, RepairController, StaticPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 40-node platform with PlanetLab-like bandwidths, 70% open nodes (the paper's
    // Figure 19 protocol).
    let config = GeneratorConfig::new(40, 0.7).expect("valid generator config");
    let generator = InstanceGenerator::new(config, NamedDistribution::PLab.build());
    let instance = generator.generate(&mut StdRng::seed_from_u64(2024));
    println!(
        "platform: n = {} open, m = {} guarded, b0 = {:.2}",
        instance.n(),
        instance.m(),
        instance.source_bandwidth()
    );

    let solver = AcyclicGuardedSolver::default();
    let solution = solver.solve(&instance);
    let nominal = solution.throughput;
    println!("nominal acyclic throughput: {nominal:.3}");

    // The busiest relay (largest outdegree among the receivers) departs mid-broadcast.
    let victim = solution
        .scheme
        .busiest_receiver()
        .expect("there is at least one receiver");
    println!(
        "departing node: C{victim} (outdegree {}, bandwidth {:.2})",
        solution.scheme.outdegree(victim),
        instance.bandwidth(victim)
    );

    let sim_config = SimConfig {
        num_chunks: 400,
        max_rounds: 40_000,
        ..SimConfig::default()
    }
    .scaled_to(nominal, 2.0);
    let half_time = 0.5 * 400.0 * sim_config.chunk_size / nominal;
    let churn = ChurnSchedule::departures_at(half_time, &[victim]);
    let overlay = Overlay::from_scheme(&solution.scheme);

    // Static baseline: the overlay is never adapted.
    let static_run = run_adaptive(
        overlay.clone(),
        sim_config,
        &churn,
        &mut StaticPolicy,
        nominal,
    );
    let starving = static_run
        .survivors
        .iter()
        .filter(|&&node| static_run.report.completion_time[node].is_none())
        .count();
    println!(
        "\nstatic overlay, departure at t = {half_time:.1}: {starving} surviving receiver(s) \
         never finished; delivered goodput {:.3} ({:.0}% of nominal)",
        static_run.goodput(),
        100.0 * static_run.goodput_vs_nominal()
    );

    // Closed loop: the controller repairs and hot-swaps on the membership change.
    let mut controller =
        RepairController::new(instance.clone(), solution.scheme.clone(), nominal, 0.9);
    let repaired_run = run_adaptive(overlay, sim_config, &churn, &mut controller, nominal);
    let decision = controller
        .decisions()
        .first()
        .expect("the departure triggered a decision");
    println!(
        "controller at t = {:.1}: victim tolerance {:.3}, residual {:.3} ({:.0}% of nominal) \
         -> repaired overlay at {:.3}",
        decision.time,
        decision.victim_tolerance,
        decision.residual,
        100.0 * decision.residual / nominal,
        decision.repaired.unwrap_or(f64::NAN)
    );
    println!(
        "repaired session: all survivors completed = {}, delivered goodput {:.3} \
         ({:.0}% of nominal), recovery {:.2} time units after the swap",
        repaired_run
            .survivors
            .iter()
            .all(|&node| repaired_run.report.completion_time[node].is_some()),
        repaired_run.goodput(),
        100.0 * repaired_run.goodput_vs_nominal(),
        repaired_run.recovery_time().unwrap_or(f64::NAN)
    );
    let ctx = controller.ctx();
    println!(
        "controller telemetry: {} flow solves, {} bisection iters, {} rescans skipped \
         ({} edges patched) — the re-probes ride the dirty-edge journal",
        ctx.flow_solves(),
        ctx.bisection_iters(),
        ctx.rescans_skipped(),
        ctx.edges_patched()
    );
    assert!(
        repaired_run.goodput() > static_run.goodput(),
        "the repaired session must beat the frozen overlay on delivered goodput"
    );
}
