//! Live-streaming scenario: a random swarm of DSL-like peers, a fraction of which sit behind
//! NATs, receives a live video stream. The overlay computed by the paper's algorithms is fed
//! to the chunk-level simulator in *live* mode to measure the lag of the slowest peer.
//!
//! Run with `cargo run --release --example live_streaming`.

use bmp::core::acyclic_guarded::AcyclicGuardedSolver;
use bmp::core::bounds::cyclic_upper_bound;
use bmp::platform::distribution::NamedDistribution;
use bmp::platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp::sim::{Overlay, SimConfig, Simulator, SourceMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let peers = 60;
    let open_probability = 0.6; // 40% of the peers are behind NATs
    let mut rng = StdRng::seed_from_u64(2024);

    let config = GeneratorConfig::new(peers, open_probability).expect("valid configuration");
    let generator = InstanceGenerator::new(config, NamedDistribution::PLab.build());
    let instance = generator.generate(&mut rng);
    println!(
        "swarm of {} peers ({} open, {} guarded), source upload {:.2}",
        peers,
        instance.n(),
        instance.m(),
        instance.source_bandwidth()
    );

    let solver = AcyclicGuardedSolver::default();
    let solution = solver.solve(&instance);
    let cyclic = cyclic_upper_bound(&instance);
    println!(
        "stream rate: {:.2} (acyclic overlay) vs {:.2} (cyclic upper bound), ratio {:.3}",
        solution.throughput,
        cyclic,
        solution.throughput / cyclic
    );
    println!(
        "largest outdegree in the overlay: {} connections",
        solution.scheme.outdegrees().into_iter().max().unwrap_or(0)
    );

    // Stream 500 chunks produced live at the overlay's nominal rate.
    let overlay = Overlay::from_scheme(&solution.scheme);
    let sim_config = SimConfig {
        num_chunks: 500,
        source_mode: SourceMode::Live {
            rate: solution.throughput,
        },
        jitter: 0.1,
        ..SimConfig::default()
    }
    .scaled_to(solution.throughput, 2.0);
    let report = Simulator::new(overlay, sim_config).run();

    let source_done = report.completion_time[0].unwrap_or(f64::NAN);
    match report.makespan() {
        Some(makespan) => {
            println!(
                "live stream of {:.0} data units: source finished producing at t = {:.1}, \
                 slowest peer finished at t = {:.1} (lag {:.1})",
                report.message_size(),
                source_done,
                makespan,
                makespan - source_done
            );
            println!(
                "worst peer delivery rate: {:.2} ({}% of the nominal stream rate)",
                report.min_achieved_rate().unwrap_or(0.0),
                (100.0 * report.min_achieved_rate().unwrap_or(0.0) / solution.throughput).round()
            );
        }
        None => println!(
            "some peers did not finish within the horizon (worst progress {:.0}%)",
            100.0 * report.worst_progress()
        ),
    }
}
