//! NAT relaying in detail: shows how guarded nodes are forced to route their upload through
//! open nodes, why the optimal *cyclic* solution may need an unbounded source degree
//! (Figure 6 of the paper), and what the low-degree acyclic alternative looks like.
//!
//! Run with `cargo run --example nat_relay_overlay`.

use bmp::core::acyclic_guarded::AcyclicGuardedSolver;
use bmp::core::worst_case::{unbounded_degree_instance, unbounded_degree_optimal_scheme};
use bmp::platform::NodeClass;

fn main() {
    let solver = AcyclicGuardedSolver::default();
    println!("Figure 6 family: b0 = 1, one open node of bandwidth m-1, m guarded nodes of 1/m");
    println!();
    println!(" m   cyclic T*  source degree  acyclic T*_ac  max degree (acyclic)");
    for m in [2usize, 4, 8, 16, 32] {
        let instance = unbounded_degree_instance(m).expect("m >= 2");
        let cyclic_scheme = unbounded_degree_optimal_scheme(m).expect("m >= 2");
        let solution = solver.solve(&instance);
        let acyclic_max_degree = solution.scheme.outdegrees().into_iter().max().unwrap_or(0);
        println!(
            " {:<3} {:<10.3} {:<14} {:<14.3} {}",
            m,
            cyclic_scheme.throughput(),
            cyclic_scheme.outdegree(0),
            solution.throughput,
            acyclic_max_degree
        );
    }
    println!();
    println!("The optimal cyclic schemes reach throughput 1 but force the source to maintain");
    println!("m simultaneous connections, while the degree lower bound is 1. The acyclic");
    println!("schemes keep every degree small at the price of a bounded throughput loss");
    println!("(never below 5/7 of the optimum, Theorem 6.2).");
    println!();

    // Show the relay structure explicitly for m = 4.
    let instance = unbounded_degree_instance(4).unwrap();
    let solution = solver.solve(&instance);
    println!("acyclic overlay for m = 4 (order {}):", solution.word);
    for (from, to, rate) in solution.scheme.edges() {
        let role = |node: usize| match instance.class(node) {
            NodeClass::Source => "source",
            NodeClass::Open => "open",
            NodeClass::Guarded => "guarded",
        };
        println!(
            "  C{from} ({}) -> C{to} ({}) at {rate:.3}",
            role(from),
            role(to)
        );
    }
}
