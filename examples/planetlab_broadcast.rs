//! PlanetLab-like bulk broadcast: compare, across NAT prevalence levels, the optimal acyclic
//! throughput, the simple ω1/ω2 overlays and the cyclic upper bound on platforms whose
//! bandwidths follow the synthetic PlanetLab-like distribution.
//!
//! Run with `cargo run --release --example planetlab_broadcast`.

use bmp::core::acyclic_guarded::AcyclicGuardedSolver;
use bmp::core::bounds::cyclic_upper_bound;
use bmp::core::omega::best_omega_throughput;
use bmp::experiments::stats::mean;
use bmp::platform::distribution::NamedDistribution;
use bmp::platform::generator::{GeneratorConfig, InstanceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let receivers = 200;
    let trials = 20;
    let solver = AcyclicGuardedSolver::default();

    println!("PlanetLab-like platform, {receivers} receivers, {trials} trials per point");
    println!("p(open)   acyclic/cyclic   best-omega/cyclic   max outdegree");
    for &p in &[0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut rng = StdRng::seed_from_u64(0x9_1AB + (p * 100.0) as u64);
        let config = GeneratorConfig::new(receivers, p).expect("valid configuration");
        let generator = InstanceGenerator::new(config, NamedDistribution::PLab.build());
        let mut acyclic_ratios = Vec::new();
        let mut omega_ratios = Vec::new();
        let mut max_degree = 0usize;
        for _ in 0..trials {
            let instance = generator.generate(&mut rng);
            let cyclic = cyclic_upper_bound(&instance);
            let solution = solver.solve(&instance);
            acyclic_ratios.push(solution.throughput / cyclic);
            let (omega, _) = best_omega_throughput(&instance, 1e-8);
            omega_ratios.push(omega / cyclic);
            max_degree =
                max_degree.max(solution.scheme.outdegrees().into_iter().max().unwrap_or(0));
        }
        println!(
            "{:<9} {:<16.4} {:<19.4} {}",
            p,
            mean(&acyclic_ratios),
            mean(&omega_ratios),
            max_degree
        );
    }
    println!();
    println!("Reading: low-degree acyclic overlays stay within a few percent of the cyclic");
    println!("optimum for every NAT prevalence level, as in Figure 19 of the paper.");
}
