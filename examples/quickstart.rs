//! Quickstart: build a small platform with open and guarded (NATed) nodes, compute a
//! low-degree acyclic broadcast overlay, and inspect it.
//!
//! Run with `cargo run --example quickstart`.

use bmp::core::bounds::cyclic_upper_bound;
use bmp::prelude::*;

fn main() {
    // A source with 6 Mbit/s of upload, two open nodes (5 Mbit/s each) and three guarded
    // nodes behind NATs (4, 1 and 1 Mbit/s) — this is the running example of the paper.
    let instance =
        Instance::new(6.0, vec![5.0, 5.0], vec![4.0, 1.0, 1.0]).expect("valid bandwidths");

    println!(
        "platform: n = {} open, m = {} guarded",
        instance.n(),
        instance.m()
    );
    println!(
        "cyclic optimum (Lemma 5.1): {:.3}",
        cyclic_upper_bound(&instance)
    );

    // Solve the acyclic problem: dichotomic search over the linear-time feasibility test.
    let solver = AcyclicGuardedSolver::default();
    let solution = solver.solve(&instance);
    println!("optimal acyclic throughput: {:.3}", solution.throughput);
    println!("increasing order (coding word): {}", solution.word);

    // The solution is an explicit overlay: who sends to whom, at which rate.
    println!("overlay edges:");
    for (from, to, rate) in solution.scheme.edges() {
        println!("  C{from} -> C{to} at {rate:.3}");
    }

    // Degree bounds of Theorem 4.1: every node handles few simultaneous connections.
    for node in instance.nodes() {
        println!(
            "  node C{} ({:?}, b = {}): outdegree {} (lower bound {})",
            node.id,
            node.class,
            node.bandwidth,
            solution.scheme.outdegree(node.id),
            node.degree_lower_bound(solution.throughput),
        );
    }

    // The throughput definition of the paper is re-checked with max-flow computations.
    println!(
        "max-flow verified throughput: {:.3}",
        solution.scheme.throughput()
    );
}
