//! Decompose a broadcast overlay into weighted broadcast trees and stripe a file over them.
//!
//! The paper (Section II-C) notes that the weighted overlay can be decomposed into a set of
//! weighted broadcast trees, which makes the schedule operational without the randomized data
//! plane: each tree carries a stripe of the message, pipelined down the tree in chunks. This
//! example builds the overlay for the paper's running instance, extracts the trees, stripes a
//! 100-unit file over them, and cross-checks the analytical completion estimate against the
//! chunk-level simulator.
//!
//! Run with `cargo run --example tree_decomposition`.

use bmp::prelude::*;
use bmp::sim::Overlay;
use bmp::trees::{completion_estimate, decompose_acyclic, stripe_message};

fn main() {
    // The running example of the paper: 2 open nodes, 3 guarded nodes behind NATs.
    let instance = Instance::new(6.0, vec![5.0, 5.0], vec![4.0, 1.0, 1.0]).expect("valid instance");
    let solution = AcyclicGuardedSolver::default().solve(&instance);
    println!(
        "acyclic overlay: throughput {:.3}, {} edges",
        solution.throughput,
        solution.scheme.edges().len()
    );

    // Exact decomposition into spanning broadcast trees.
    let decomposition = decompose_acyclic(&solution.scheme, solution.throughput)
        .expect("acyclic schemes decompose");
    decomposition
        .verify(&solution.scheme)
        .expect("the decomposition respects every edge capacity");
    println!(
        "decomposition: {} trees summing to rate {:.3} (max depth {})",
        decomposition.num_trees(),
        decomposition.throughput(),
        decomposition.max_depth()
    );
    for (index, tree) in decomposition.trees().iter().enumerate() {
        println!(
            "  tree {index}: weight {:.3}, depth {}, edges {:?}",
            tree.weight(),
            tree.max_depth(),
            tree.edges()
        );
    }

    // Stripe a 100-unit file proportionally to the tree weights.
    let message = 100.0;
    let chunk = 0.5;
    let plan = stripe_message(&decomposition, message).expect("non-empty decomposition");
    println!("stripes for a {message}-unit file:");
    for (index, stripe) in plan.stripes.iter().enumerate() {
        println!("  tree {index}: {stripe:.2}");
    }

    // Analytical per-node completion estimate under pipelined chunked transfer.
    let estimate = completion_estimate(&decomposition, message, chunk).expect("valid inputs");
    println!("analytical completion estimates (chunk size {chunk}):");
    for (node, time) in estimate.iter().enumerate().skip(1) {
        println!("  C{node}: {time:.2}");
    }

    // Cross-check with the randomized chunk simulator on the same overlay.
    let config = SimConfig {
        num_chunks: (message / chunk) as usize,
        chunk_size: chunk,
        round_duration: 0.25,
        ..SimConfig::default()
    };
    let report = Simulator::new(Overlay::from_scheme(&solution.scheme), config).run();
    println!("simulated completion times (random-useful-chunk data plane):");
    for node in 1..instance.num_nodes() {
        match report.completion_time[node] {
            Some(time) => println!("  C{node}: {time:.2}"),
            None => println!("  C{node}: did not complete"),
        }
    }
    println!(
        "fluid lower bound: {:.2} time units (message / throughput)",
        message / solution.throughput
    );
}
