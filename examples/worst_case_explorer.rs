//! Explorer for the worst-case families of Section VI: the 5/7 instance (Figure 18) and the
//! `I(α, k)` family of Theorem 6.3.
//!
//! Run with `cargo run --release --example worst_case_explorer`.

use bmp::core::acyclic_guarded::AcyclicGuardedSolver;
use bmp::core::bounds::{cyclic_upper_bound, five_sevenths, theorem63_limit_ratio};
use bmp::core::worst_case::{theorem63_acyclic_upper_bound, theorem63_instance};
use bmp::platform::paper::{figure18, theorem63_rational_alpha};

fn main() {
    let solver = AcyclicGuardedSolver::default();

    println!("== Figure 18: the 5/7 worst case ==");
    println!("eps       T*_ac     ratio (cyclic optimum is 1)");
    for k in 0..=20 {
        let epsilon = 0.14 * k as f64 / 20.0;
        let instance = figure18(epsilon).expect("epsilon in range");
        let (acyclic, _) = solver.optimal_throughput(&instance);
        let ratio = acyclic / cyclic_upper_bound(&instance);
        let marker = if (epsilon - 1.0 / 14.0).abs() < 0.004 {
            "  <= eps = 1/14"
        } else {
            ""
        };
        println!("{epsilon:<9.4} {acyclic:<9.4} {ratio:.4}{marker}");
    }
    println!("tight bound 5/7 = {:.4}", five_sevenths());
    println!();

    println!("== Theorem 6.3: the I(alpha, k) family ==");
    let (p, q) = theorem63_rational_alpha();
    let alpha = f64::from(p) / f64::from(q);
    println!(
        "alpha = {p}/{q} = {alpha:.4}, analytic acyclic bound = {:.4}, limit = {:.4}",
        theorem63_acyclic_upper_bound(alpha),
        theorem63_limit_ratio()
    );
    println!(" k    n      m      T*_ac   (cyclic optimum is 1)");
    for k in 1..=4 {
        let instance = theorem63_instance(p, q, k).expect("valid parameters");
        let (acyclic, _) = solver.optimal_throughput(&instance);
        println!(
            " {:<4} {:<6} {:<6} {:.4}",
            k,
            instance.n(),
            instance.m(),
            acyclic
        );
    }
    println!();
    println!("Even for arbitrarily large platforms of this shape, acyclic solutions cannot");
    println!(
        "get closer to the cyclic optimum than (1+sqrt(41))/8 = {:.4}.",
        theorem63_limit_ratio()
    );
}
