//! Umbrella crate for the bounded multi-port broadcasting reproduction.
//!
//! This crate re-exports the public API of every sub-crate of the workspace so that
//! examples and downstream users only need a single dependency:
//!
//! * [`platform`] — LastMile / bounded multi-port platform instances and generators.
//! * [`flow`] — flow-network substrate (max-flow / min-cut).
//! * [`lp`] — dense two-phase simplex solver used for ground-truth cross checks.
//! * [`core`] — the paper's algorithms: bounds, Algorithm 1, Algorithm 2 + dichotomic
//!   search, the cyclic construction, coding words, ω-words and worst-case families.
//! * [`trees`] — decomposition of the overlays into weighted broadcast trees.
//! * [`sim`] — Massoulié-style randomized chunk streaming simulator over the overlays.
//! * [`experiments`] — statistics and runners that regenerate every table and figure.
//! * [`serve`] — sharded multi-session broadcast server with admission control and
//!   fleet metrics.

pub use bmp_core as core;
pub use bmp_experiments as experiments;
pub use bmp_flow as flow;
pub use bmp_lp as lp;
pub use bmp_platform as platform;
pub use bmp_serve as serve;
pub use bmp_sim as sim;
pub use bmp_trees as trees;

/// Convenience prelude bringing the most commonly used items into scope.
pub mod prelude {
    pub use bmp_core::{
        acyclic_guarded::AcyclicGuardedSolver,
        acyclic_open::acyclic_open_scheme,
        bounds::Bounds,
        cyclic_open::cyclic_open_scheme,
        scheme::BroadcastScheme,
        solver::{EvalCtx, Solution, Solver, Telemetry},
        word::CodingWord,
    };
    pub use bmp_platform::{
        distribution::BandwidthDistribution, generator::InstanceGenerator, instance::Instance,
        node::NodeClass,
    };
    pub use bmp_sim::engine::{SimConfig, Simulator};
}

/// Every solver in the workspace: the `bmp-core` registry plus the tree-decomposition
/// adapter of `bmp-trees` — the same list the CLI dispatches through
/// `solve --algorithm NAME`.
pub use bmp_trees::full_registry;

#[cfg(test)]
mod tests {
    #[test]
    fn full_registry_includes_core_and_trees() {
        let names: Vec<&str> = super::full_registry().iter().map(|s| s.name()).collect();
        assert!(names.len() >= 6);
        assert!(names.contains(&"acyclic-guarded"));
        assert!(names.contains(&"tree-decomposition"));
    }
}
