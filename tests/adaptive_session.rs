//! Cross-crate integration tests of the closed-loop session engine: determinism across
//! hot-swaps, the identical-overlay no-op property, and agreement between the repaired
//! session's *delivered* rate and the static max-flow prediction of `bmp_core::churn`.

use bmp::core::churn::residual_throughput;
use bmp::platform::distribution::NamedDistribution;
use bmp::platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp::prelude::*;
use bmp::sim::{run_adaptive, ChurnSchedule, Overlay, RepairController, Session, StaticPolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_instance(receivers: usize, p: f64, seed: u64) -> Instance {
    let config = GeneratorConfig::new(receivers, p).unwrap();
    let generator = InstanceGenerator::new(config, NamedDistribution::Unif100.build());
    generator.generate(&mut StdRng::seed_from_u64(seed))
}

/// Same seed + same churn schedule ⇒ bit-identical `SimReport`, including across an
/// overlay hot-swap performed by the repair controller (the session RNG is owned by the
/// session and never re-seeded on swap).
#[test]
fn adaptive_runs_are_bit_identical_across_repeats() {
    let instance = random_instance(20, 0.7, 91);
    let solution = AcyclicGuardedSolver::default().solve(&instance);
    let nominal = solution.throughput;
    let victim = solution.scheme.busiest_receiver().unwrap();
    let config = SimConfig {
        num_chunks: 200,
        max_rounds: 20_000,
        seed: 0xC0FFEE,
        ..SimConfig::default()
    }
    .scaled_to(nominal, 2.0);
    let half_time = 0.5 * 200.0 * config.chunk_size / nominal;
    let churn = ChurnSchedule::departures_at(half_time, &[victim]);
    let run = || {
        let mut controller =
            RepairController::new(instance.clone(), solution.scheme.clone(), nominal, 0.9);
        run_adaptive(
            Overlay::from_scheme(&solution.scheme),
            config,
            &churn,
            &mut controller,
            nominal,
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first.report, second.report);
    assert_eq!(first.swaps, second.swaps);
    // The swap really happened (otherwise this test degenerates to the frozen case).
    assert!(first.swaps.iter().any(|s| s.swapped));
    // And the static-policy run under the same seed/trace differs — the swap is real.
    let static_run = run_adaptive(
        Overlay::from_scheme(&solution.scheme),
        config,
        &churn,
        &mut StaticPolicy,
        nominal,
    );
    assert_ne!(first.report, static_run.report);
}

/// The repaired session's delivered rate (measured *after* the hot-swap) recovers to
/// within chunk-granularity tolerance of the static prediction for the repaired overlay
/// (`churn::residual_throughput` of the repaired scheme with nobody departed = its
/// nominal throughput).
#[test]
fn repaired_delivery_matches_the_static_prediction() {
    let instance = random_instance(25, 0.7, 47);
    let solution = AcyclicGuardedSolver::default().solve(&instance);
    let nominal = solution.throughput;
    let victim = solution.scheme.busiest_receiver().unwrap();
    let config = SimConfig {
        num_chunks: 400,
        max_rounds: 40_000,
        ..SimConfig::default()
    }
    .scaled_to(nominal, 2.0);
    let half_time = 0.5 * 400.0 * config.chunk_size / nominal;
    let churn = ChurnSchedule::departures_at(half_time, &[victim]);

    let mut controller =
        RepairController::new(instance.clone(), solution.scheme.clone(), nominal, 0.9);
    let outcome = run_adaptive(
        Overlay::from_scheme(&solution.scheme),
        config,
        &churn,
        &mut controller,
        nominal,
    );
    let swap = outcome
        .swaps
        .iter()
        .find(|s| s.swapped)
        .expect("the busiest relay's departure must trigger a repair");
    let predicted = swap
        .repaired_nominal
        .expect("a swap carries its repaired nominal");
    // Static consistency: repairing means re-solving, and the repaired scheme restricted
    // to nobody-departed is its own nominal throughput.
    assert!(predicted > 0.0);

    // Dynamic check: every survivor completed, and the slowest survivor's achieved rate
    // recovers to within chunk-granularity tolerance of the static prediction (the run
    // streamed at `nominal` before the swap and at `predicted` after it, so the
    // whole-run rate is bounded below by a discounted `min` of the two).
    assert!(
        outcome
            .survivors
            .iter()
            .all(|&node| outcome.report.completion_time[node].is_some()),
        "survivors starved on the repaired overlay"
    );
    let message = config.num_chunks as f64 * config.chunk_size;
    let worst_rate = outcome
        .survivors
        .iter()
        .map(|&node| message / outcome.report.completion_time[node].unwrap())
        .fold(f64::INFINITY, f64::min);
    let floor = predicted.min(nominal);
    assert!(
        worst_rate > 0.5 * floor,
        "worst achieved rate {worst_rate} vs static prediction {floor} for the repaired overlay"
    );
    assert!(
        worst_rate <= nominal * 1.05,
        "the simulation cannot beat the fluid optimum"
    );

    // Cross-check with the frozen-overlay prediction: the static residual explains why
    // the swap fired in the first place.
    let residual = residual_throughput(&solution.scheme, &[victim]);
    assert!(residual < 0.9 * nominal);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hot-swapping an overlay with the *identical* edge list mid-run is a no-op for
    /// every metric, at any swap round, for any seed.
    #[test]
    fn identical_hot_swap_is_a_metrics_noop(seed in 0u64..1_000, swap_round in 1usize..120) {
        let instance = random_instance(12, 0.7, 7);
        let solution = AcyclicGuardedSolver::default().solve(&instance);
        let config = SimConfig {
            num_chunks: 60,
            seed,
            max_rounds: 5_000,
            ..SimConfig::default()
        }
        .scaled_to(solution.throughput, 2.0);
        let overlay = Overlay::from_scheme(&solution.scheme);
        let mut swapped = Session::new(overlay.clone(), config);
        let mut plain = Session::new(overlay.clone(), config);
        for round in 0..config.max_rounds {
            if round == swap_round {
                swapped.hot_swap(overlay.clone());
            }
            let a = swapped.step();
            let b = plain.step();
            prop_assert_eq!(a, b);
            if swapped.is_complete() && plain.is_complete() {
                break;
            }
        }
        prop_assert_eq!(swapped.report(), plain.report());
        prop_assert_eq!(swapped.swaps(), if swap_round < swapped.rounds_run() { 1 } else { 0 });
    }
}
