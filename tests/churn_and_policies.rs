//! Cross-crate integration tests for the churn analysis and the chunk-selection policies:
//! the static residual-throughput analysis of `bmp-core` agrees with the dynamic behaviour of
//! `bmp-sim` under injected departures, and every push policy sustains the overlay's rate.

use bmp::core::churn::{repair, residual_throughput};
use bmp::platform::distribution::NamedDistribution;
use bmp::platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp::prelude::*;
use bmp::sim::{ChunkPolicy, ChurnSchedule, Overlay};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_instance(receivers: usize, p: f64, seed: u64) -> Instance {
    let config = GeneratorConfig::new(receivers, p).unwrap();
    let generator = InstanceGenerator::new(config, NamedDistribution::Unif100.build());
    generator.generate(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn every_policy_sustains_the_overlay_rate() {
    let solver = AcyclicGuardedSolver::default();
    let instance = random_instance(25, 0.7, 31);
    let solution = solver.solve(&instance);
    let overlay = Overlay::from_scheme(&solution.scheme);
    for policy in ChunkPolicy::all() {
        let config = SimConfig {
            num_chunks: 250,
            policy,
            ..SimConfig::default()
        }
        .scaled_to(solution.throughput, 2.0);
        let report = Simulator::new(overlay.clone(), config).run();
        assert!(report.all_completed(), "policy {}", policy.label());
        let rate = report.min_achieved_rate().unwrap();
        assert!(
            rate > 0.7 * solution.throughput,
            "policy {} achieved {rate} vs nominal {}",
            policy.label(),
            solution.throughput
        );
    }
}

#[test]
fn static_residual_analysis_predicts_simulated_starvation() {
    let solver = AcyclicGuardedSolver::default();
    let instance = random_instance(20, 0.6, 77);
    let solution = solver.solve(&instance);

    // Remove the busiest relay: the static analysis says how much rate survives.
    let victim = (1..instance.num_nodes())
        .max_by_key(|&node| solution.scheme.outdegree(node))
        .unwrap();
    let residual = residual_throughput(&solution.scheme, &[victim]);
    assert!(residual < solution.throughput + 1e-9);

    // Simulate the same departure from the very start of the broadcast.
    let config = SimConfig {
        num_chunks: 200,
        max_rounds: 5_000,
        ..SimConfig::default()
    }
    .scaled_to(solution.throughput, 2.0);
    let churn = ChurnSchedule::departures_at(0.0, &[victim]);
    let report = Simulator::new(Overlay::from_scheme(&solution.scheme), config)
        .with_churn(churn.clone())
        .run();

    let survivors = churn.surviving_receivers(instance.num_nodes());
    let all_survivors_done = survivors
        .iter()
        .all(|&node| report.completion_time[node].is_some());
    if residual <= 1e-9 {
        // Static analysis says some survivor is cut off: the simulation must starve too.
        assert!(
            !all_survivors_done,
            "static analysis predicts starvation but the simulation completed"
        );
    } else {
        // Some rate survives for every receiver; with a generous horizon everyone finishes.
        assert!(
            all_survivors_done,
            "residual {residual} > 0 but survivors starved"
        );
    }
}

#[test]
fn repair_restores_the_optimum_of_the_surviving_platform() {
    let solver = AcyclicGuardedSolver::default();
    let instance = random_instance(30, 0.5, 13);
    let solution = solver.solve(&instance);
    let victim = (1..instance.num_nodes())
        .max_by_key(|&node| solution.scheme.outdegree(node))
        .unwrap();

    let outcome = repair(&instance, &[victim], &solver).unwrap();
    assert!(outcome.solution.scheme.is_feasible());
    // The repaired overlay is the solver's optimum on the reduced platform, hence at least
    // 5/7 of the reduced cyclic optimum.
    let reduced_cyclic = bmp::core::bounds::cyclic_upper_bound(&outcome.instance);
    assert!(
        outcome.solution.throughput >= bmp::core::bounds::five_sevenths() * reduced_cyclic - 1e-6
    );

    // And it streams: the simulator delivers on the repaired overlay.
    let config = SimConfig {
        num_chunks: 200,
        ..SimConfig::default()
    }
    .scaled_to(outcome.solution.throughput, 2.0);
    let report = Simulator::new(Overlay::from_scheme(&outcome.solution.scheme), config).run();
    assert!(report.all_completed());
}

#[test]
fn rejoin_after_an_outage_still_completes() {
    let solver = AcyclicGuardedSolver::default();
    let instance = random_instance(15, 0.7, 5);
    let solution = solver.solve(&instance);
    let victim = (1..instance.num_nodes())
        .max_by_key(|&node| solution.scheme.outdegree(node))
        .unwrap();
    let config = SimConfig {
        num_chunks: 200,
        max_rounds: 50_000,
        ..SimConfig::default()
    }
    .scaled_to(solution.throughput, 2.0);
    let horizon = 200.0 * config.chunk_size / solution.throughput;
    let churn = ChurnSchedule::new(vec![
        bmp::sim::ChurnEvent {
            time: 0.25 * horizon,
            node: victim,
            action: bmp::sim::ChurnAction::Depart,
        },
        bmp::sim::ChurnEvent {
            time: 0.75 * horizon,
            node: victim,
            action: bmp::sim::ChurnAction::Rejoin,
        },
    ]);
    let report = Simulator::new(Overlay::from_scheme(&solution.scheme), config)
        .with_churn(churn)
        .run();
    // Once the relay is back, everyone eventually finishes (the outage only delays delivery).
    assert!(report.all_completed());
    assert!(report.makespan().unwrap() >= 0.5 * horizon);
}
