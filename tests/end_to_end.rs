//! End-to-end integration: random platforms → scheduling algorithms → max-flow verification
//! → chunk-level streaming simulation.

use bmp::core::acyclic_guarded::AcyclicGuardedSolver;
use bmp::core::bounds::{cyclic_open_optimum, cyclic_upper_bound};
use bmp::core::cyclic_open::cyclic_open_optimal_scheme;
use bmp::platform::distribution::NamedDistribution;
use bmp::platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp::platform::{Instance, NodeClass};
use bmp::sim::{Overlay, SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_instance(receivers: usize, p: f64, dist: NamedDistribution, seed: u64) -> Instance {
    let config = GeneratorConfig::new(receivers, p).unwrap();
    let generator = InstanceGenerator::new(config, dist.build());
    generator.generate(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn acyclic_pipeline_on_random_platforms() {
    let solver = AcyclicGuardedSolver::default();
    for (seed, dist) in [
        (1u64, NamedDistribution::Unif100),
        (2, NamedDistribution::Power1),
        (3, NamedDistribution::Ln1),
        (4, NamedDistribution::PLab),
    ] {
        let instance = random_instance(40, 0.6, dist, seed);
        let cyclic = cyclic_upper_bound(&instance);
        let solution = solver.solve(&instance);

        // Feasibility, acyclicity and max-flow verification.
        assert!(
            solution.scheme.is_feasible(),
            "violations: {:?}",
            solution.scheme.validate()
        );
        assert!(solution.scheme.is_acyclic());
        let measured = solution.scheme.throughput();
        assert!(
            measured + 1e-6 * cyclic >= solution.throughput,
            "{}: measured {measured} < claimed {}",
            dist.label(),
            solution.throughput
        );

        // The acyclic optimum never beats the cyclic bound, and never drops below 5/7 of it.
        assert!(solution.throughput <= cyclic + 1e-6);
        assert!(solution.throughput >= 5.0 / 7.0 * cyclic - 1e-6);

        // Degree bounds of Theorem 4.1.
        let mut excess_three = 0;
        for node in 0..instance.num_nodes() {
            let excess = solution.scheme.degree_excess(node, solution.throughput);
            match instance.class(node) {
                NodeClass::Guarded => assert!(excess <= 1, "guarded node {node}: {excess}"),
                _ => {
                    assert!(excess <= 3, "open node {node}: {excess}");
                    if excess == 3 {
                        excess_three += 1;
                    }
                }
            }
        }
        assert!(excess_three <= 1);

        // Firewall constraint holds structurally: no guarded → guarded edge.
        for (from, to, _) in solution.scheme.edges() {
            assert!(
                !(instance.is_guarded(from) && instance.is_guarded(to)),
                "guarded-to-guarded edge {from} -> {to}"
            );
        }
    }
}

#[test]
fn simulation_delivers_close_to_nominal_rate() {
    let solver = AcyclicGuardedSolver::default();
    let instance = random_instance(25, 0.7, NamedDistribution::Unif100, 99);
    let solution = solver.solve(&instance);
    let overlay = Overlay::from_scheme(&solution.scheme);
    let config = SimConfig {
        num_chunks: 300,
        ..SimConfig::default()
    }
    .scaled_to(solution.throughput, 2.0);
    let report = Simulator::new(overlay, config).run();
    assert!(report.all_completed());
    let rate = report.min_achieved_rate().unwrap();
    assert!(
        rate > 0.8 * solution.throughput,
        "simulated {rate} vs nominal {}",
        solution.throughput
    );
}

#[test]
fn cyclic_pipeline_on_open_only_platforms() {
    for seed in [5u64, 6, 7] {
        let instance = random_instance(30, 1.0, NamedDistribution::Unif100, seed);
        assert_eq!(instance.m(), 0);
        let optimum = cyclic_open_optimum(&instance).unwrap();
        let (scheme, t) = cyclic_open_optimal_scheme(&instance).unwrap();
        assert!((t - optimum).abs() < 1e-9);
        assert!(scheme.is_feasible());
        assert!(scheme.throughput() + 1e-6 >= t);
        // Theorem 5.2 degree bound.
        for node in 0..instance.num_nodes() {
            let bound = bmp::platform::node::degree_lower_bound(instance.bandwidth(node), t) + 2;
            assert!(scheme.outdegree(node) <= bound.max(4));
        }
    }
}

#[test]
fn guarded_heavy_platforms_are_handled() {
    // Mostly-guarded swarms: the open nodes and the source are the only possible relays.
    let solver = AcyclicGuardedSolver::default();
    let instance = random_instance(30, 0.15, NamedDistribution::Power2, 11);
    let solution = solver.solve(&instance);
    assert!(solution.scheme.is_feasible());
    let cyclic = cyclic_upper_bound(&instance);
    assert!(solution.throughput >= 5.0 / 7.0 * cyclic - 1e-6);
    assert!(solution.scheme.throughput() + 1e-6 >= solution.throughput);
}
