//! Integration tests reproducing the worked examples of the paper (Figures 1, 2, 4, 5 and
//! Table I) through the public API of the umbrella crate.

use bmp::core::acyclic_guarded::AcyclicGuardedSolver;
use bmp::core::bounds::cyclic_upper_bound;
use bmp::core::conservative::{is_compatible_with_order, is_conservative, order_to_word};
use bmp::core::scheme::BroadcastScheme;
use bmp::core::word::{word_trace, CodingWord};
use bmp::experiments::table1::paper_table1;
use bmp::platform::paper::figure1;

#[test]
fn figure1_cyclic_optimum_is_4_4() {
    let instance = figure1();
    assert!((cyclic_upper_bound(&instance) - 4.4).abs() < 1e-12);
    // The LP oracle agrees.
    let lp = bmp::core::lp_check::optimal_cyclic_lp(&instance).unwrap();
    assert!((lp - 4.4).abs() < 1e-6);
}

#[test]
fn figure1_optimal_acyclic_is_4_and_low_degree() {
    let instance = figure1();
    let solution = AcyclicGuardedSolver::default().solve(&instance);
    assert!((solution.throughput - 4.0).abs() < 1e-6);
    assert!(solution.scheme.is_feasible());
    assert!(solution.scheme.is_acyclic());
    assert!((solution.scheme.throughput() - 4.0).abs() < 1e-6);
    // Theorem 4.1 degree bounds.
    for node in 0..instance.num_nodes() {
        let excess = solution.scheme.degree_excess(node, solution.throughput);
        if instance.is_guarded(node) {
            assert!(excess <= 1);
        } else {
            assert!(excess <= 3);
        }
    }
}

#[test]
fn figure2_order_and_scheme() {
    // The order σ = 0 3 1 2 4 5 of Figure 2 reaches throughput 4.
    let instance = figure1();
    let order = vec![0, 3, 1, 2, 4, 5];
    let word = order_to_word(&instance, &order).unwrap();
    let t = bmp::core::word::optimal_throughput_for_word(&instance, &word, 1e-12);
    assert!((t - 4.0).abs() < 1e-6);
    let scheme = AcyclicGuardedSolver::default()
        .scheme_for_word(&instance, 4.0, &word)
        .unwrap();
    assert!(is_compatible_with_order(&scheme, &order).unwrap());
    assert!(is_conservative(&scheme, &order).unwrap());
    assert!((scheme.throughput() - 4.0).abs() < 1e-9);
}

#[test]
fn figure4_non_conservative_scheme_detected() {
    // Reproduce the non-conservative scheme of Figure 4 and check the detector.
    let instance = figure1();
    let mut scheme = BroadcastScheme::new(instance);
    scheme.set_rate(0, 3, 4.0);
    scheme.set_rate(0, 1, 2.0);
    scheme.set_rate(3, 1, 2.0);
    scheme.set_rate(3, 2, 2.0);
    scheme.set_rate(1, 2, 2.0);
    scheme.set_rate(1, 4, 3.0);
    scheme.set_rate(2, 4, 1.0);
    scheme.set_rate(2, 5, 4.0);
    let order = vec![0, 3, 1, 2, 4, 5];
    assert!(scheme.is_feasible());
    assert!((scheme.throughput() - 4.0).abs() < 1e-9);
    assert!(!is_conservative(&scheme, &order).unwrap());
}

#[test]
fn figure5_word_and_table1_trace() {
    // Algorithm 2 at T = 4 produces the word ■©■©■ (order 0 3 1 4 2 5) and the Table I trace.
    let table = paper_table1();
    assert!(table.feasible);
    let open: Vec<f64> = table.columns.iter().map(|c| c.open_avail).collect();
    assert_eq!(open, vec![6.0, 2.0, 7.0, 3.0, 5.0, 1.0]);
    assert_eq!(table.columns.last().unwrap().prefix, "gogog");

    // The same trace is obtained directly from the word-state recursion.
    let word = CodingWord::parse("gogog").unwrap();
    let trace = word_trace(&figure1(), 4.0, &word);
    let waste: Vec<f64> = trace.iter().map(|s| s.open_waste).collect();
    assert_eq!(waste, vec![0.0, 0.0, 0.0, 0.0, 3.0, 3.0]);
}

#[test]
fn remark_under_table1_open_open_transfer_comparison() {
    // The Algorithm 2 word uses only 3 units of open→open transfer, the Figure 2 scheme 4.
    let instance = figure1();
    let alg2 = word_trace(&instance, 4.0, &CodingWord::parse("gogog").unwrap());
    let fig2 = word_trace(&instance, 4.0, &CodingWord::parse("googg").unwrap());
    assert_eq!(alg2.last().unwrap().open_waste, 3.0);
    assert_eq!(fig2.last().unwrap().open_waste, 4.0);
}
