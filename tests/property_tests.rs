//! Cross-crate property tests: random instances are thrown at every algorithm and the
//! paper's invariants (feasibility, degree bounds, ratio bounds, oracle agreement) are
//! checked.

use bmp::core::acyclic_guarded::AcyclicGuardedSolver;
use bmp::core::acyclic_open::acyclic_open_optimal_scheme;
use bmp::core::bounds::{
    acyclic_open_optimum, cyclic_open_optimum, cyclic_upper_bound, five_sevenths,
    theorem61_ratio_bound,
};
use bmp::core::cyclic_open::cyclic_open_optimal_scheme;
use bmp::core::exhaustive::optimal_acyclic_exhaustive;
use bmp::core::greedy::is_acyclic_feasible;
use bmp::core::omega::best_omega_throughput;
use bmp::platform::{Instance, NodeClass};
use proptest::prelude::*;

/// Strategy generating a random instance with up to `max_open` open and `max_guarded` guarded
/// nodes (at least one receiver overall).
fn instance_strategy(max_open: usize, max_guarded: usize) -> impl Strategy<Value = Instance> {
    (
        0.2_f64..20.0,
        proptest::collection::vec(0.1_f64..20.0, 0..=max_open),
        proptest::collection::vec(0.1_f64..20.0, 0..=max_guarded),
    )
        .prop_filter_map("need at least one receiver", |(b0, open, guarded)| {
            Instance::new(b0, open, guarded).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn acyclic_solver_invariants(instance in instance_strategy(8, 8)) {
        let solver = AcyclicGuardedSolver::default();
        let solution = solver.solve(&instance);
        let cyclic = cyclic_upper_bound(&instance);

        // Feasibility and acyclicity of the constructed scheme.
        prop_assert!(solution.scheme.is_feasible(), "{:?}", solution.scheme.validate());
        prop_assert!(solution.scheme.is_acyclic());

        // The claimed throughput is certified by max-flow on the explicit scheme.
        let measured = solution.scheme.throughput();
        prop_assert!(measured + 1e-6 * cyclic.max(1.0) >= solution.throughput,
            "measured {} < claimed {}", measured, solution.throughput);

        // Sandwich: 5/7 · T* ≤ T*_ac ≤ T* (Theorem 6.2 and Lemma 5.1).
        prop_assert!(solution.throughput <= cyclic + 1e-6 * cyclic.max(1.0));
        prop_assert!(solution.throughput >= five_sevenths() * cyclic - 1e-6 * cyclic.max(1.0));

        // Degree bounds of Theorem 4.1.
        if solution.throughput > 1e-6 {
            let mut open_excess_three = 0usize;
            for node in 0..instance.num_nodes() {
                let excess = solution.scheme.degree_excess(node, solution.throughput);
                match instance.class(node) {
                    NodeClass::Guarded => prop_assert!(excess <= 1,
                        "guarded node {} has excess {}", node, excess),
                    _ => {
                        prop_assert!(excess <= 3, "open node {} has excess {}", node, excess);
                        if excess == 3 {
                            open_excess_three += 1;
                        }
                    }
                }
            }
            prop_assert!(open_excess_three <= 1);
        }
    }

    #[test]
    fn dichotomic_matches_exhaustive_on_tiny_instances(instance in instance_strategy(4, 4)) {
        let solver = AcyclicGuardedSolver::default();
        let (dichotomic, _) = solver.optimal_throughput(&instance);
        let (exhaustive, _) = optimal_acyclic_exhaustive(&instance, 1e-11);
        prop_assert!((dichotomic - exhaustive).abs() <= 1e-5 * exhaustive.max(1.0),
            "dichotomic {} vs exhaustive {}", dichotomic, exhaustive);
    }

    #[test]
    fn greedy_feasibility_is_monotone(instance in instance_strategy(8, 8), fraction in 0.05_f64..0.95) {
        // If T is feasible then any smaller T' is feasible too.
        let solver = AcyclicGuardedSolver::default();
        let (optimum, _) = solver.optimal_throughput(&instance);
        prop_assume!(optimum > 1e-6);
        let smaller = optimum * fraction;
        prop_assert!(is_acyclic_feasible(&instance, smaller),
            "T = {} should be feasible below the optimum {}", smaller, optimum);
        prop_assert!(!is_acyclic_feasible(&instance, optimum * 1.02 + 1e-6));
    }

    #[test]
    fn omega_words_never_beat_the_optimum(instance in instance_strategy(6, 6)) {
        let solver = AcyclicGuardedSolver::default();
        let (optimum, _) = solver.optimal_throughput(&instance);
        let (omega, _) = best_omega_throughput(&instance, 1e-9);
        prop_assert!(omega <= optimum + 1e-6 * optimum.max(1.0));
    }

    #[test]
    fn open_only_closed_forms_and_schemes(
        b0 in 0.5_f64..20.0,
        open in proptest::collection::vec(0.1_f64..20.0, 1..=10),
    ) {
        let instance = Instance::open_only(b0, open).unwrap();
        let acyclic = acyclic_open_optimum(&instance).unwrap();
        let cyclic = cyclic_open_optimum(&instance).unwrap();

        // Theorem 6.1: the ratio is at least 1 − 1/n, and acyclic ≤ cyclic.
        prop_assert!(acyclic <= cyclic + 1e-9);
        prop_assert!(acyclic / cyclic >= theorem61_ratio_bound(instance.n()) - 1e-9);

        // Algorithm 1 and the cyclic construction both reach their closed-form optima.
        let (scheme1, t1) = acyclic_open_optimal_scheme(&instance).unwrap();
        prop_assert!((t1 - acyclic).abs() < 1e-9);
        prop_assert!(scheme1.is_feasible());
        prop_assert!(scheme1.throughput() + 1e-6 >= t1);
        prop_assert!(scheme1.max_degree_excess(t1.max(1e-12)) <= 1);

        let (scheme2, t2) = cyclic_open_optimal_scheme(&instance).unwrap();
        prop_assert!((t2 - cyclic).abs() < 1e-9);
        prop_assert!(scheme2.is_feasible());
        prop_assert!(scheme2.throughput() + 1e-6 >= t2);
        for node in 0..instance.num_nodes() {
            let bound = bmp::platform::node::degree_lower_bound(instance.bandwidth(node), t2) + 2;
            prop_assert!(scheme2.outdegree(node) <= bound.max(4),
                "node {} degree {} above max({}, 4)", node, scheme2.outdegree(node), bound);
        }
    }

    #[test]
    fn lp_oracle_agrees_with_closed_form_cyclic(instance in instance_strategy(3, 3)) {
        let lp = bmp::core::lp_check::optimal_cyclic_lp(&instance).unwrap();
        let closed_form = cyclic_upper_bound(&instance);
        prop_assert!((lp - closed_form).abs() <= 1e-4 * closed_form.max(1.0),
            "LP {} vs closed form {}", lp, closed_form);
    }
}
