//! Integration tests for the cyclic/acyclic comparison results of Section VI.

use bmp::core::acyclic_guarded::AcyclicGuardedSolver;
use bmp::core::bounds::{cyclic_upper_bound, five_sevenths, theorem63_limit_ratio};
use bmp::core::homogeneous::{tight_homogeneous, worst_ratio_over_delta};
use bmp::core::worst_case::theorem63_acyclic_upper_bound;
use bmp::experiments::fig19::{run as run_fig19, Fig19Config};
use bmp::experiments::fig7::{run as run_fig7, Fig7Config};
use bmp::platform::distribution::NamedDistribution;
use bmp::platform::paper::{figure18, figure18_tight_epsilon, theorem63_alpha};

#[test]
fn five_sevenths_is_tight_on_figure18() {
    let solver = AcyclicGuardedSolver::default();
    let instance = figure18(figure18_tight_epsilon()).unwrap();
    let (acyclic, _) = solver.optimal_throughput(&instance);
    let ratio = acyclic / cyclic_upper_bound(&instance);
    assert!((ratio - five_sevenths()).abs() < 1e-6);
}

#[test]
fn ratio_never_below_five_sevenths_on_tight_homogeneous_grid() {
    let solver = AcyclicGuardedSolver::default();
    for n in 1..=8 {
        for m in 0..=8 {
            if let Some(cell) = worst_ratio_over_delta(n, m, 6, &solver) {
                assert!(
                    cell.worst_ratio >= five_sevenths() - 1e-6,
                    "(n={n}, m={m}): {}",
                    cell.worst_ratio
                );
            }
        }
    }
}

#[test]
fn theorem63_diagonal_is_bounded_away_from_one() {
    // Along m ≈ ((√41 − 3)/8)·n the worst ratio stays around 0.92–0.93 even for large n
    // (Figure 7's persistent dip), and the analytic bound predicts its limit.
    let solver = AcyclicGuardedSolver::default();
    let alpha = theorem63_alpha();
    let n = 64usize;
    let m = (alpha * n as f64).round() as usize;
    let cell = worst_ratio_over_delta(n, m, n, &solver).unwrap();
    assert!(cell.worst_ratio < 0.95, "ratio = {}", cell.worst_ratio);
    assert!(cell.worst_ratio >= five_sevenths() - 1e-9);
    assert!((theorem63_acyclic_upper_bound(alpha) - theorem63_limit_ratio()).abs() < 1e-9);
}

#[test]
fn open_only_cells_tend_to_one() {
    let solver = AcyclicGuardedSolver::default();
    let small = worst_ratio_over_delta(4, 0, 1, &solver).unwrap();
    let large = worst_ratio_over_delta(64, 0, 1, &solver).unwrap();
    assert!(large.worst_ratio > small.worst_ratio);
    assert!(large.worst_ratio > 0.97);
}

#[test]
fn tight_homogeneous_instances_have_unit_cyclic_optimum() {
    for (n, m, delta) in [(3usize, 4usize, 0.0), (5, 2, 2.5), (10, 10, 7.0)] {
        let instance = tight_homogeneous(n, m, delta).unwrap();
        assert!((cyclic_upper_bound(&instance) - 1.0).abs() < 1e-9);
    }
}

#[test]
fn fig7_quick_grid_reproduces_the_paper_shape() {
    let result = run_fig7(Fig7Config::quick());
    let minimum = result.global_minimum().unwrap();
    assert!(minimum.worst_ratio >= five_sevenths() - 1e-6);
    assert!(result.fraction_above(0.8) > 0.7);
}

#[test]
fn fig19_quick_run_stays_within_five_percent_on_average() {
    let config = Fig19Config {
        distributions: vec![NamedDistribution::Unif100, NamedDistribution::Ln2],
        open_probabilities: vec![0.5, 0.9],
        sizes: vec![20],
        instances_per_cell: 30,
        seed: 2026,
        threads: 2,
    };
    let result = run_fig19(&config);
    for cell in &result.cells {
        assert!(
            cell.optimal_acyclic.mean > 0.94,
            "{} p={} n={}: mean acyclic ratio {}",
            cell.distribution,
            cell.open_probability,
            cell.size,
            cell.optimal_acyclic.mean
        );
        assert!(cell.theorem_word.mean <= cell.best_omega.mean + 1e-9);
        assert!(cell.best_omega.mean <= cell.optimal_acyclic.mean + 1e-9);
        assert!(cell.optimal_acyclic.min >= five_sevenths() - 1e-6);
    }
}
