//! Cross-crate integration tests for the broadcast-tree decomposition: the trees extracted
//! from the solver's overlays are valid, their analytical completion model agrees with the
//! chunk-level simulator, and the greedy packing handles the cyclic construction.

use bmp::core::cyclic_open::cyclic_open_optimal_scheme;
use bmp::platform::distribution::NamedDistribution;
use bmp::platform::generator::{GeneratorConfig, InstanceGenerator};
use bmp::prelude::*;
use bmp::sim::Overlay;
use bmp::trees::{decompose_acyclic, greedy_packing, makespan_estimate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_instance(receivers: usize, p: f64, dist: NamedDistribution, seed: u64) -> Instance {
    let config = GeneratorConfig::new(receivers, p).unwrap();
    let generator = InstanceGenerator::new(config, dist.build());
    generator.generate(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn decomposition_of_random_overlays_is_valid_across_distributions() {
    let solver = AcyclicGuardedSolver::default();
    for (seed, dist) in NamedDistribution::all().into_iter().enumerate() {
        let instance = random_instance(30, 0.7, dist, 100 + seed as u64);
        let solution = solver.solve(&instance);
        if solution.throughput <= 1e-6 {
            continue;
        }
        let decomposition = decompose_acyclic(&solution.scheme, solution.throughput)
            .unwrap_or_else(|e| panic!("{}: {e}", dist.label()));
        decomposition.verify(&solution.scheme).unwrap();
        // The trees collectively carry the full throughput with no more connections per node
        // than the low-degree scheme already uses.
        for node in 0..instance.num_nodes() {
            assert!(
                decomposition.connection_degree(node) <= solution.scheme.outdegree(node),
                "{}: node {node}",
                dist.label()
            );
        }
    }
}

#[test]
fn analytical_completion_estimate_tracks_the_simulator() {
    let solver = AcyclicGuardedSolver::default();
    let instance = random_instance(20, 0.8, NamedDistribution::Unif100, 7);
    let solution = solver.solve(&instance);
    let decomposition = decompose_acyclic(&solution.scheme, solution.throughput).unwrap();

    let chunk = solution.throughput / 4.0;
    let num_chunks = 240;
    let message = num_chunks as f64 * chunk;
    let estimate = makespan_estimate(&decomposition, message, chunk).unwrap();

    let config = SimConfig {
        num_chunks,
        chunk_size: chunk,
        round_duration: 0.25,
        ..SimConfig::default()
    };
    let report = Simulator::new(Overlay::from_scheme(&solution.scheme), config).run();
    assert!(report.all_completed());
    let simulated = report.makespan().unwrap();

    let fluid = message / solution.throughput;
    // Both the estimate and the simulation lie above the fluid bound and within a modest
    // factor of it; the randomized data plane pays some extra chunk-granularity overhead.
    assert!(estimate >= fluid - 1e-9);
    assert!(simulated >= fluid - 1e-9);
    assert!(
        estimate <= 1.5 * fluid,
        "analytical estimate {estimate} too far above the fluid time {fluid}"
    );
    assert!(
        simulated <= 2.0 * fluid,
        "simulated makespan {simulated} too far above the fluid time {fluid}"
    );
}

#[test]
fn greedy_packing_recovers_most_of_the_cyclic_optimum_on_open_platforms() {
    // The cyclic construction (Theorem 5.2) produces overlays with back edges; the interval
    // decomposition does not apply, but the greedy packing still extracts a tree set carrying
    // a large share of the optimum.
    let open: Vec<f64> = (0..12).map(|i| 10.0 - 0.5 * i as f64).collect();
    let instance = Instance::open_only(6.0, open).unwrap();
    let (scheme, _throughput) = cyclic_open_optimal_scheme(&instance).unwrap();
    let packing = greedy_packing(&scheme).unwrap();
    packing.decomposition.verify(&scheme).unwrap();
    assert!(
        packing.efficiency() > 0.5,
        "greedy packing efficiency {} unexpectedly low",
        packing.efficiency()
    );
}

#[test]
fn per_word_schemes_also_decompose() {
    // Decomposition applies to any acyclic scheme, not only the solver's optimum: use the
    // regular ω1 word at a sub-optimal throughput.
    let instance = random_instance(16, 0.6, NamedDistribution::Power1, 11);
    let solver = AcyclicGuardedSolver::default();
    let word = bmp::core::omega::omega1(instance.n(), instance.m());
    let target = bmp::core::word::optimal_throughput_for_word(&instance, &word, 1e-10) * 0.95;
    if target <= 1e-6 {
        return;
    }
    let scheme = solver.scheme_for_word(&instance, target, &word).unwrap();
    let decomposition = decompose_acyclic(&scheme, target).unwrap();
    decomposition.verify(&scheme).unwrap();
    assert!(decomposition.num_trees() >= 1);
}
