//! Offline micro-benchmark harness exposing the `criterion` surface this workspace uses.
//!
//! Each benchmark is warmed up, then timed over batches until the measurement budget is
//! spent; the median batch mean is reported as `ns/iter` on stdout. Under `cargo test`
//! (which passes `--test` to `harness = false` targets) every benchmark body runs exactly
//! once so the suite stays fast while still exercising the bench code.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier (criterion-compatible).
pub use std::hint::black_box;

/// One completed benchmark measurement (an extension over upstream criterion: the
/// harness collects every result so bench binaries can emit machine-readable reports).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Full benchmark label (`group/function/parameter`).
    pub id: String,
    /// Median time per iteration in nanoseconds (0.0 under `--test`).
    pub median_ns: f64,
    /// Best sample in nanoseconds (0.0 under `--test`).
    pub best_ns: f64,
    /// Whether the run was a `--test` smoke run (one iteration, no timing).
    pub smoke: bool,
}

/// Results collected by every benchmark run in this process, in execution order.
static REPORTS: Mutex<Vec<BenchReport>> = Mutex::new(Vec::new());

/// Drains the results collected so far (benchmark binaries call this after running
/// their groups to write machine-readable report files).
#[must_use]
pub fn take_reports() -> Vec<BenchReport> {
    std::mem::take(&mut REPORTS.lock().expect("report collector poisoned"))
}

fn record_report(report: BenchReport) {
    REPORTS
        .lock()
        .expect("report collector poisoned")
        .push(report);
}

pub mod measurement {
    //! Measurement kinds. Only wall-clock time is supported.

    /// Wall-clock time measurement (the default).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Identifier of a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (f, Some(p)) if f.is_empty() => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            test_mode: false,
            filter: None,
        }
    }
}

/// Entry point holding global configuration (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Applies command-line arguments (`--test` for one-shot mode, a bare string filters
    /// benchmark names; criterion-specific flags are accepted and ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.settings.test_mode = true,
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline"
                | "--load-baseline" | "--sample-size" | "--warm-up-time" | "--measurement-time" => {
                    // Flags with a value we do not use.
                    if matches!(
                        arg.as_str(),
                        "--sample-size"
                            | "--warm-up-time"
                            | "--measurement-time"
                            | "--save-baseline"
                            | "--baseline"
                            | "--load-baseline"
                            | "--profile-time"
                    ) {
                        let _ = args.next();
                    }
                }
                flag if flag.starts_with("--") => {}
                filter => self.settings.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _criterion: std::marker::PhantomData,
            name: name.into(),
            settings: self.settings.clone(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id: BenchmarkId = name.into();
        run_one(&self.settings, &id.render(), &mut routine);
        self
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix and timing settings.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: std::marker::PhantomData<(&'a mut Criterion, M)>,
    name: String,
    settings: Settings,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.settings.sample_size = samples.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.settings.warm_up_time = duration;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.settings.measurement_time = duration;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_one(&self.settings, &label, &mut routine);
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_one(&self.settings, &label, &mut |b| routine(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    settings: Settings,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, reporting the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.settings.test_mode {
            black_box(routine());
            self.samples.push(0.0);
            return;
        }
        // Warm-up: also estimates the per-call cost to size measurement batches.
        let warm_up_end = Instant::now() + self.settings.warm_up_time;
        let mut warm_up_iters = 0u64;
        let warm_up_start = Instant::now();
        while Instant::now() < warm_up_end {
            black_box(routine());
            warm_up_iters += 1;
        }
        let per_call = warm_up_start.elapsed().as_secs_f64() / warm_up_iters.max(1) as f64;
        let batch_budget =
            self.settings.measurement_time.as_secs_f64() / self.settings.sample_size as f64;
        let batch_iters = ((batch_budget / per_call.max(1e-9)) as u64).clamp(1, 1_000_000_000);
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed / batch_iters as f64 * 1e9);
        }
    }
}

fn run_one(settings: &Settings, label: &str, routine: &mut dyn FnMut(&mut Bencher)) {
    if let Some(filter) = &settings.filter {
        if !label.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        settings: settings.clone(),
        samples: Vec::new(),
    };
    routine(&mut bencher);
    if settings.test_mode {
        println!("test {label} ... ok (bench smoke run)");
        record_report(BenchReport {
            id: label.to_string(),
            median_ns: 0.0,
            best_ns: 0.0,
            smoke: true,
        });
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label:<56} (no measurement: b.iter was never called)");
        return;
    }
    bencher
        .samples
        .sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let median = bencher.samples[bencher.samples.len() / 2];
    let best = bencher.samples[0];
    println!("{label:<56} median {median:>14.1} ns/iter  (best {best:>14.1})");
    record_report(BenchReport {
        id: label.to_string(),
        median_ns: median,
        best_ns: best,
        smoke: false,
    });
}

/// Declares a group of benchmark functions (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion = criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main` (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("dinic", 16).render(), "dinic/16");
        assert_eq!(BenchmarkId::from_parameter(8).render(), "8");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn bencher_collects_samples_quickly() {
        let settings = Settings {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            test_mode: false,
            filter: None,
        };
        let mut bencher = Bencher {
            settings,
            samples: Vec::new(),
        };
        bencher.iter(|| black_box(2 + 2));
        assert_eq!(bencher.samples.len(), 3);
        assert!(bencher.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn reports_are_collected_and_drained() {
        let settings = Settings {
            sample_size: 2,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(2),
            test_mode: false,
            filter: None,
        };
        run_one(&settings, "collector/unique-report-label", &mut |b| {
            b.iter(|| black_box(1 + 1))
        });
        let reports = take_reports();
        let mine = reports
            .iter()
            .find(|r| r.id == "collector/unique-report-label")
            .expect("report recorded");
        assert!(!mine.smoke);
        assert!(mine.median_ns >= 0.0);
        assert!(mine.best_ns <= mine.median_ns);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut criterion = Criterion {
            settings: Settings {
                sample_size: 2,
                warm_up_time: Duration::from_millis(1),
                measurement_time: Duration::from_millis(2),
                test_mode: true,
                filter: None,
            },
        };
        let mut group = criterion.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(2));
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with", 4), &4, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
