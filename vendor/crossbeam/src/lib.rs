//! Offline shim for the pieces of `crossbeam` this workspace uses: scoped threads.
//!
//! Implemented on top of `std::thread::scope` (stable since Rust 1.63), keeping
//! crossbeam's call shape: the closure passed to [`scope`] receives a [`Scope`] whose
//! `spawn` hands the child closure a `&Scope` again (commonly ignored as `|_|`).
//!
//! Divergence from crossbeam: a panicking child makes [`scope`] panic on join (std
//! semantics) instead of returning `Err`. Callers here immediately `.expect()` the
//! result, so the observable behaviour — a panic — is the same.

use std::thread;

/// Scoped-thread handle passed to the [`scope`] closure and to spawned children.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The child closure receives the scope (crossbeam shape).
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope for spawning threads that may borrow from the caller's stack.
///
/// All spawned threads are joined before `scope` returns. Always returns `Ok`; see the
/// module docs for the panic-propagation divergence from crossbeam.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1, 2, 3, 4];
        let mut results = vec![0; data.len()];
        scope(|s| {
            for (slot, &x) in results.iter_mut().zip(&data) {
                s.spawn(move |_| {
                    *slot = x * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(results, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let result = scope(|s| {
            let handle = s.spawn(|inner| {
                let nested = inner.spawn(|_| 21);
                nested.join().unwrap() * 2
            });
            handle.join().unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }
}
