//! Offline property-testing harness exposing the `proptest` surface this workspace uses.
//!
//! Cases are generated from deterministic per-test seeds (derived from the test name, or
//! from `PROPTEST_SEED` when set), so failures are reproducible run-to-run. There is no
//! shrinking: a failing case is reported with the generated inputs instead. The supported
//! surface is exactly what the repository's test suites rely on:
//!
//! * range strategies (`0usize..10`, `0.0_f64..1.0`, `2..=8`), tuples of strategies,
//!   [`collection::vec`], [`strategy::Just`],
//! * `.prop_map`, `.prop_flat_map`, `.prop_filter`, `.prop_filter_map`,
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`] macros with an optional `#![proptest_config(...)]` header.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing a `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests (subset of the real `proptest!` macro).
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run(stringify!($name), &config, |rng| {
                    let strategy = ($($strategy,)+);
                    let ($($arg,)+) = match $crate::strategy::Strategy::try_sample(&strategy, rng) {
                        Ok(values) => values,
                        Err(reason) => return Err($crate::test_runner::TestCaseError::Reject(reason)),
                    };
                    // Rendered before the body runs: the body may consume the inputs.
                    let inputs: ::std::string::String = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}; ")),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            Err($crate::test_runner::TestCaseError::Fail(
                                format!("{message}\n  inputs: {inputs}"),
                            ))
                        }
                        other => other,
                    }
                });
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (it is regenerated without counting against the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::borrow::Cow::Borrowed(stringify!($cond)),
            ));
        }
    };
}
