//! Value-generation strategies (subset of `proptest::strategy`).

use rand::rngs::StdRng;
use rand::Rng;
use std::borrow::Cow;
use std::ops::{Range, RangeInclusive};

/// Why a generated case was rejected (e.g. a failed `prop_assume!` or filter).
pub type Rejection = Cow<'static, str>;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no shrinking: `try_sample` either produces a value or
/// rejects the attempt (the runner retries rejected attempts without consuming a case).
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Generates one value.
    fn try_sample(&self, rng: &mut StdRng) -> Result<Self::Value, Rejection>;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and feeds it to `f` to obtain the strategy that
    /// produces the final value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `predicate` (others are rejected and retried).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<Rejection>,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            predicate,
        }
    }

    /// Maps values through a fallible `f`, rejecting cases where it returns `None`.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: impl Into<Rejection>,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn try_sample(&self, rng: &mut StdRng) -> Result<Self::Value, Rejection> {
        (**self).try_sample(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn try_sample(&self, _rng: &mut StdRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn try_sample(&self, rng: &mut StdRng) -> Result<U, Rejection> {
        self.inner.try_sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn try_sample(&self, rng: &mut StdRng) -> Result<T::Value, Rejection> {
        let intermediate = self.inner.try_sample(rng)?;
        (self.f)(intermediate).try_sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: Rejection,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn try_sample(&self, rng: &mut StdRng) -> Result<S::Value, Rejection> {
        let value = self.inner.try_sample(rng)?;
        if (self.predicate)(&value) {
            Ok(value)
        } else {
            Err(self.reason.clone())
        }
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: Rejection,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn try_sample(&self, rng: &mut StdRng) -> Result<U, Rejection> {
        let value = self.inner.try_sample(rng)?;
        (self.f)(value).ok_or_else(|| self.reason.clone())
    }
}

/// Type-erased strategy, see [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn try_sample(&self, rng: &mut StdRng) -> Result<T, Rejection> {
        self.inner.try_sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn try_sample(&self, rng: &mut StdRng) -> Result<$ty, Rejection> {
                if self.start >= self.end {
                    return Err(Cow::Borrowed("empty range strategy"));
                }
                Ok(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn try_sample(&self, rng: &mut StdRng) -> Result<$ty, Rejection> {
                if self.start() > self.end() {
                    return Err(Cow::Borrowed("empty range strategy"));
                }
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn try_sample(&self, rng: &mut StdRng) -> Result<Self::Value, Rejection> {
                Ok(($(self.$idx.try_sample(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Length specification accepted by [`crate::collection::vec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn try_sample(&self, rng: &mut StdRng) -> Result<Vec<S::Value>, Rejection> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.try_sample(rng)).collect()
    }
}
