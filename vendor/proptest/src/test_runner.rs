//! Deterministic case runner backing the [`crate::proptest!`] macro.

use crate::strategy::Rejection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
    /// Maximum number of rejected attempts before the runner gives up.
    pub max_global_rejects: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed: the property does not hold.
    Fail(String),
    /// The case was rejected (filtered out); it is retried without counting.
    Reject(Rejection),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Creates a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(Rejection::Owned(reason.into()))
    }
}

/// Base seed for a test: `PROPTEST_SEED` when set, otherwise a stable hash of the name.
fn base_seed(test_name: &str) -> u64 {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(parsed) = seed.parse::<u64>() {
            return parsed;
        }
    }
    let mut hasher = DefaultHasher::new();
    test_name.hash(&mut hasher);
    hasher.finish()
}

/// Runs `case` until `config.cases` cases passed, panicking on the first failure.
///
/// Each case gets its own RNG seeded from the test name and attempt index, so a failure
/// message's seed information is enough to reproduce it.
pub fn run(
    test_name: &str,
    config: &Config,
    mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let base = base_seed(test_name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while accepted < config.cases {
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest `{test_name}`: too many rejected cases \
                         ({rejected} rejects for {accepted} accepted)"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest `{test_name}` failed after {accepted} passing case(s) \
                     (attempt seed {seed}):\n  {message}"
                );
            }
        }
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn runner_passes_trivial_property() {
        run("trivial", &Config::with_cases(16), |rng| {
            let x = (0usize..100).try_sample(rng).unwrap();
            if x < 100 {
                Ok(())
            } else {
                Err(TestCaseError::fail("out of range"))
            }
        });
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn runner_reports_failures() {
        run("failing", &Config::with_cases(16), |rng| {
            let x = (0usize..10).try_sample(rng).unwrap();
            if x < 5 {
                Ok(())
            } else {
                Err(TestCaseError::fail("x too large"))
            }
        });
    }

    #[test]
    fn rejects_do_not_consume_cases() {
        let mut accepted = 0;
        run("rejecting", &Config::with_cases(8), |rng| {
            let x = (0usize..10).try_sample(rng).unwrap();
            if x % 2 == 1 {
                return Err(TestCaseError::reject("odd"));
            }
            accepted += 1;
            Ok(())
        });
        assert_eq!(accepted, 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_surface_works(
            x in 0usize..50,
            pair in (0.0_f64..1.0, 1u64..4),
            items in crate::collection::vec(0i32..10, 0..6),
        ) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert!(pair.0 < 1.0 && pair.1 >= 1);
            prop_assert_eq!(items.len(), items.len());
            prop_assert_ne!(x, 13usize);
        }

        #[test]
        fn combinators_compose(n in (1usize..8).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, 1..=4).prop_map(move |v| (n, v))
        })) {
            let (bound, values) = n;
            prop_assert!(values.iter().all(|&v| v < bound));
        }
    }
}
