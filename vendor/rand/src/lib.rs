//! Offline drop-in subset of `rand` 0.8 used by this workspace.
//!
//! Provides [`RngCore`], [`SeedableRng`], the blanket [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`, `fill`), [`rngs::StdRng`] (a xoshiro256**
//! generator — statistically solid and fully deterministic per seed, though its
//! stream differs from upstream rand's ChaCha12-based `StdRng`), and
//! [`seq::SliceRandom`] (`shuffle` / `choose`). Reproducibility contracts inside
//! this repository (same seed ⇒ same instance) are preserved.

use std::ops::{Range, RangeInclusive};

/// Core interface of a random-number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 like upstream rand.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut splitmix = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            splitmix = splitmix.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = splitmix;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly by [`Rng::gen`] (the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty => $method:ident),*) => {$(
        impl StandardSample for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$method() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64,
    isize => next_u64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling on the top zone to avoid modulo bias.
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $ty
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let x = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint (`next_down` steps toward
        // -inf for any sign, unlike bit twiddling).
        if x < self.end {
            x
        } else {
            self.start.max(self.end.next_down())
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        let x = self.start + (self.end - self.start) * u;
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

/// Extension methods available on every [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256** state words, for checkpoint serialization. Feeding the
        /// returned array back through [`StdRng::from_state`] yields a generator that
        /// continues the exact same stream.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.state
        }

        /// Rebuilds a generator from a state captured with [`StdRng::state`]. The all-zero
        /// state (invalid for xoshiro) is replaced by the same fixed non-zero state that
        /// [`SeedableRng::from_seed`] uses, so a round-trip through serialization can never
        /// produce a degenerate generator.
        #[must_use]
        pub fn from_state(state: [u64; 4]) -> Self {
            if state.iter().all(|&w| w == 0) {
                return <StdRng as SeedableRng>::from_seed([0u8; 32]);
            }
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = [0u64; 4];
            for (word, chunk) in state.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state.
            if state.iter().all(|&w| w == 0) {
                state = [
                    0x9E37_79B9_7F4A_7C15,
                    0xD1B5_4A32_D192_ED03,
                    0x8C6E_1D29_B5EF_DC72,
                    1,
                ];
            }
            StdRng { state }
        }
    }

    /// Alias kept for code written against small-rng configurations.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related helpers (mirrors `rand::seq`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-export (mirrors `rand::prelude`).
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0..=4usize);
            assert!(y <= 4);
            let z = rng.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&z));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let n = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&n));
            let neg = rng.gen_range(-5.0..-1.0);
            assert!((-5.0..-1.0).contains(&neg));
        }
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut items: Vec<usize> = (0..20).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(items.choose(&mut rng).is_some());
    }

    #[test]
    fn state_round_trip_continues_the_same_stream() {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = StdRng::from_state(rng.state());
        let xs: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| resumed.next_u64()).collect();
        assert_eq!(xs, ys);
        // The all-zero state is replaced by a valid one, never a stuck generator.
        let mut zero = StdRng::from_state([0; 4]);
        assert_ne!(zero.next_u64(), zero.next_u64());
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
