//! Offline drop-in subset of `serde` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides the exact
//! surface the workspace relies on: the [`Serialize`] / [`Deserialize`] traits (over a
//! JSON-shaped [`Value`] model instead of serde's visitor machinery) and the matching
//! derive macros re-exported from `serde_derive`. `serde_json` (also vendored) renders
//! [`Value`] to text and parses it back.
//!
//! The representation mirrors serde's defaults so that documents produced here are
//! interchangeable with real serde_json output for the types this workspace defines:
//! structs are maps, unit enum variants are strings, data-carrying variants are
//! externally tagged single-key maps, newtype structs are transparent.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value: the intermediate representation of every (de)serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent that fits `i64`).
    I64(i64),
    /// Unsigned integer larger than `i64::MAX`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as `f64` when it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(x) if x >= 0 => Some(x as u64),
            Value::U64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as `i64` when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) => i64::try_from(x).ok(),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object (field list).
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the shape a type expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Creates an "expected X while deserializing Y" error.
    pub fn expected(what: &str, while_parsing: &str) -> Self {
        DeError {
            message: format!("expected {what} while deserializing {while_parsing}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value model.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Looks up a field of an object by name (helper used by the derive macros).
pub fn field<'a>(
    fields: &'a [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'a Value, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}` while deserializing {ty}")))
}

macro_rules! impl_serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if (*self as i128) >= 0 && (*self as i128) > i64::MAX as i128 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .map(|x| x as i128)
                    .or_else(|| value.as_u64().map(|x| x as i128))
                    .ok_or_else(|| DeError::expected("integer", stringify!($ty)))?;
                <$ty>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_array().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected array of length {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::from_value(&1.5_f64.to_value()).unwrap(), 1.5);
        assert_eq!(usize::from_value(&7_usize.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v = vec![(1.0_f64, 2.0_f64), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn integers_accept_integral_json_numbers() {
        assert_eq!(f64::from_value(&Value::I64(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::I64(3)).unwrap(), 3);
        assert!(u64::from_value(&Value::I64(-3)).is_err());
    }

    #[test]
    fn missing_field_is_reported() {
        let obj = vec![("a".to_string(), Value::I64(1))];
        assert!(field(&obj, "a", "T").is_ok());
        let err = field(&obj, "b", "T").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
