//! Derive macros for the vendored `serde` subset.
//!
//! The build environment has no crates.io access, so these derives are written against
//! `proc_macro` alone: the input item is tokenised by hand and the generated impls are
//! assembled as source text. Supported shapes — exactly the ones this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently, wider ones as arrays),
//! * unit structs,
//! * enums with unit, newtype, tuple and struct variants (externally tagged, like serde).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported and produce a
//! compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Splits the tokens of a brace/paren group on top-level commas, tracking `<...>` depth so
/// commas inside generic arguments (e.g. `BTreeMap<String, f64>`) do not split fields.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0_i32;
    for token in tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(token.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Strips leading `#[...]` attributes and a `pub`/`pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Field names of a `{ ... }` group (named fields).
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for part in split_top_level_commas(tokens) {
        let i = skip_attrs_and_vis(&part, 0);
        match part.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => continue, // trailing comma
            Some(other) => return Err(format!("unexpected token {other} in field list")),
        }
        match part.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "expected `:` after field `{}`",
                    names.last().unwrap()
                ))
            }
        }
    }
    Ok(names)
}

/// Number of fields of a `( ... )` group (tuple fields).
fn parse_tuple_arity(tokens: &[TokenTree]) -> usize {
    split_top_level_commas(tokens)
        .into_iter()
        .filter(|part| !part.is_empty())
        .count()
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the vendored serde derive"
            ));
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::NamedStruct(parse_named_fields(&body)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::TupleStruct(parse_tuple_arity(&body))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("unexpected struct body {other:?}")),
        },
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<TokenTree>>()
                }
                other => return Err(format!("unexpected enum body {other:?}")),
            };
            let mut variants = Vec::new();
            for part in split_top_level_commas(&body) {
                let j = skip_attrs_and_vis(&part, 0);
                let variant_name = match part.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    None => continue, // trailing comma
                    Some(other) => return Err(format!("unexpected token {other} in enum body")),
                };
                let shape = match part.get(j + 1) {
                    None => VariantShape::Unit,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantShape::Tuple(parse_tuple_arity(&inner))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantShape::Named(parse_named_fields(&inner)?)
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        return Err(format!(
                            "explicit discriminant on variant `{variant_name}` is not supported"
                        ));
                    }
                    Some(other) => {
                        return Err(format!("unexpected token {other} after variant name"))
                    }
                };
                variants.push((variant_name, shape));
            }
            Shape::Enum(variants)
        }
        other => return Err(format!("cannot derive serde traits for `{other}` items")),
    };
    Ok(Input { name, shape })
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(parsed) => parsed,
        Err(message) => return compile_error(&message),
    };
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, serde::Value)> = Vec::new();\n{pushes}serde::Value::Object(fields)"
            )
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(variant, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{variant} => serde::Value::Str({variant:?}.to_string()),\n"
                    ),
                    VariantShape::Tuple(1) => format!(
                        "{name}::{variant}(f0) => serde::Value::Object(vec![({variant:?}.to_string(), serde::Serialize::to_value(f0))]),\n"
                    ),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{variant}({}) => serde::Value::Object(vec![({variant:?}.to_string(), serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value({f}))"))
                            .collect();
                        format!(
                            "{name}::{variant} {{ {binds} }} => serde::Value::Object(vec![({variant:?}.to_string(), serde::Value::Object(vec![{}]))]),\n",
                            pushes.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n{body}\n    }}\n}}\n"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(parsed) => parsed,
        Err(message) => return compile_error(&message),
    };
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(serde::field(obj, {f:?}, {name:?})?)?,\n"
                    )
                })
                .collect();
            format!(
                "let obj = value.as_object().ok_or_else(|| serde::DeError::expected(\"map\", {name:?}))?;\nOk({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(value)?))")
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| serde::DeError::expected(\"array\", {name:?}))?;\nif items.len() != {arity} {{ return Err(serde::DeError::custom(format!(\"expected {arity} elements for {name}, got {{}}\", items.len()))); }}\nOk({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("let _ = value; Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, shape)| matches!(shape, VariantShape::Unit))
                .map(|(variant, _)| format!("{variant:?} => return Ok({name}::{variant}),\n"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|(variant, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "{variant:?} => return Ok({name}::{variant}(serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        Some(format!(
                            "{variant:?} => {{\nlet items = payload.as_array().ok_or_else(|| serde::DeError::expected(\"array\", {name:?}))?;\nif items.len() != {arity} {{ return Err(serde::DeError::custom(\"wrong tuple variant arity\".to_string())); }}\nreturn Ok({name}::{variant}({}));\n}}\n",
                            items.join(", ")
                        ))
                    }
                    VariantShape::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(serde::field(obj, {f:?}, {name:?})?)?,\n"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{variant:?} => {{\nlet obj = payload.as_object().ok_or_else(|| serde::DeError::expected(\"map\", {name:?}))?;\nreturn Ok({name}::{variant} {{\n{inits}}});\n}}\n"
                        ))
                    }
                })
                .collect();
            format!(
                "if let Some(tag) = value.as_str() {{\n    match tag {{\n{unit_arms}        _ => return Err(serde::DeError::custom(format!(\"unknown variant `{{tag}}` of {name}\"))),\n    }}\n}}\nif let Some(obj) = value.as_object() {{\n    if obj.len() == 1 {{\n        let (tag, payload) = &obj[0];\n        match tag.as_str() {{\n{tagged_arms}            _ => return Err(serde::DeError::custom(format!(\"unknown variant `{{tag}}` of {name}\"))),\n        }}\n    }}\n}}\nErr(serde::DeError::expected(\"enum representation\", {name:?}))"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n    }}\n}}\n"
    )
    .parse()
    .unwrap()
}
