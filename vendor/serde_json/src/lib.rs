//! Offline JSON text layer for the vendored `serde` subset.
//!
//! Provides the pieces of the real `serde_json` API this workspace calls:
//! [`to_string`], [`to_string_pretty`], [`from_str`], the [`Value`] re-export and an
//! [`Error`] type. Numbers are printed with Rust's shortest-roundtrip `Display`, so
//! `f64` values survive a serialize → parse cycle exactly.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error raised by JSON parsing or by a value mismatch during deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(err: serde::DeError) -> Self {
        Error::new(err.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // Rust's Display prints the shortest string that parses back to the same f64.
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.read_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let c = match code {
                                // High surrogate: a low surrogate escape must follow and
                                // the pair decodes to one supplementary-plane character.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 2) != Some(&b'u')
                                    {
                                        return Err(Error::new("unpaired high surrogate"));
                                    }
                                    let low = self.read_hex4(self.pos + 3)?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(Error::new("unpaired low surrogate"));
                                }
                                _ => char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            };
                            out.push(c);
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so this is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape starting at byte offset `start`.
    fn read_hex4(&self, start: usize) -> Result<u32> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let value = vec![(0.1_f64, 2.0_f64), (f64::MAX, -0.25)];
        let json = to_string(&value).unwrap();
        let back: Vec<(f64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let v: Value = from_str(r#"{"a\n": [1, 2.5, "xA"], "b": {"c": true}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a\n");
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("xA"));
    }

    #[test]
    fn pretty_output_contains_newlines() {
        let json = to_string_pretty(&vec![1_u32, 2]).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, vec![1, 2]);
    }

    #[test]
    fn surrogate_pairs_decode_to_supplementary_characters() {
        let parsed: String = from_str(r#""\ud83d\ude00 ok""#).unwrap();
        assert_eq!(parsed, "\u{1F600} ok");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ud83dA""#).is_err());
        assert!(from_str::<String>(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.5 x").is_err());
        assert!(from_str::<f64>("").is_err());
    }
}
